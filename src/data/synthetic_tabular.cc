#include "data/synthetic_tabular.h"

#include <string>
#include <vector>

#include "util/check.h"

namespace activedp {

Dataset GenerateSyntheticTabular(const SyntheticTabularConfig& config,
                                 Rng& rng) {
  CHECK_GE(config.num_classes, 2);
  CHECK_GT(config.num_features, 0);
  CHECK_GT(config.informative_features, 0);
  CHECK_LE(config.informative_features, config.num_features);

  const int classes = config.num_classes;
  const int d = config.num_features;
  const int k_informative = config.informative_features;

  // Per-class means. Informative feature k separates the classes along a
  // random sign with graded strength; other features are shared noise.
  std::vector<std::vector<double>> means(classes,
                                         std::vector<double>(d, 0.0));
  for (int k = 0; k < k_informative; ++k) {
    const double strength =
        config.class_separation *
        (1.0 - static_cast<double>(k) / (2.0 * k_informative));
    const double sign = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    for (int y = 0; y < classes; ++y) {
      // Spread class means evenly in [-1/2, 1/2] * strength along this axis.
      const double position =
          classes == 1 ? 0.0
                       : (static_cast<double>(y) / (classes - 1)) - 0.5;
      means[y][k] = sign * strength * position * 2.0;
    }
  }

  std::vector<Example> examples;
  examples.reserve(config.num_examples);
  for (int n = 0; n < config.num_examples; ++n) {
    const int y = rng.UniformInt(classes);
    Example e;
    e.features.resize(d);
    for (int j = 0; j < d; ++j) {
      e.features[j] = rng.Normal(means[y][j], 1.0);
    }
    e.label = y;
    if (config.label_noise > 0.0 && rng.Bernoulli(config.label_noise)) {
      int flipped = rng.UniformInt(classes - 1);
      if (flipped >= e.label) ++flipped;
      e.label = flipped;
    }
    examples.push_back(std::move(e));
  }

  DatasetMeta meta;
  meta.name = config.name;
  meta.task_description = config.task_description;
  meta.task = TaskType::kTabularClassification;
  meta.num_classes = classes;
  meta.num_features = d;
  for (int y = 0; y < classes; ++y) {
    meta.class_names.push_back("class" + std::to_string(y));
  }

  Dataset dataset(std::move(meta), std::move(examples));
  std::vector<std::string> feature_names(d);
  for (int j = 0; j < d; ++j) feature_names[j] = "f" + std::to_string(j);
  dataset.set_feature_names(std::move(feature_names));
  return dataset;
}

}  // namespace activedp
