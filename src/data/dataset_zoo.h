#ifndef ACTIVEDP_DATA_DATASET_ZOO_H_
#define ACTIVEDP_DATA_DATASET_ZOO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/result.h"

namespace activedp {

/// Description of one of the eight evaluation datasets (paper Table 2).
/// `paper_*` are the sizes reported in the paper; generation uses
/// paper sizes scaled by a user-chosen factor.
struct ZooEntry {
  std::string name;              // e.g. "youtube"
  std::string display_name;      // e.g. "Youtube"
  std::string task;              // e.g. "Spam classification"
  TaskType type = TaskType::kTextClassification;
  int paper_train = 0;
  int paper_valid = 0;
  int paper_test = 0;
};

/// All eight entries in the paper's Table 2 order:
/// Youtube, IMDB, Yelp, Amazon, Bios-PT, Bios-JP, Occupancy, Census.
const std::vector<ZooEntry>& DatasetZoo();

/// Lower-case names of all zoo datasets, in Table 2 order.
std::vector<std::string> ZooDatasetNames();

/// Looks up a zoo entry by (lower-case) name.
Result<ZooEntry> FindZooEntry(const std::string& name);

/// Generates the named dataset at `scale` times the paper's size (scale 1.0
/// reproduces Table 2 sizes) and splits it 80/10/10 as in §4.1.1. The
/// generator parameters are calibrated so each dataset's difficulty matches
/// the accuracy range the paper reports for it (see DESIGN.md).
Result<DataSplit> MakeZooDataset(const std::string& name, double scale,
                                 uint64_t seed);

}  // namespace activedp

#endif  // ACTIVEDP_DATA_DATASET_ZOO_H_
