#include "data/example.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace activedp {

double SparseDot(const SparseVector& x, const std::vector<double>& w) {
  double sum = 0.0;
  for (size_t i = 0; i < x.indices.size(); ++i) {
    DCHECK(x.indices[i] < static_cast<int>(w.size()));
    sum += x.values[i] * w[x.indices[i]];
  }
  return sum;
}

void SparseAxpy(double alpha, const SparseVector& x, std::vector<double>& w) {
  for (size_t i = 0; i < x.indices.size(); ++i) {
    DCHECK(x.indices[i] < static_cast<int>(w.size()));
    w[x.indices[i]] += alpha * x.values[i];
  }
}

void L2Normalize(SparseVector& x) {
  double ss = 0.0;
  for (double v : x.values) ss += v * v;
  if (ss <= 0.0) return;
  const double inv = 1.0 / std::sqrt(ss);
  for (double& v : x.values) v *= inv;
}

bool Example::HasToken(int id) const {
  auto it = std::lower_bound(
      term_counts.begin(), term_counts.end(), id,
      [](const std::pair<int, int>& tc, int key) { return tc.first < key; });
  return it != term_counts.end() && it->first == id;
}

}  // namespace activedp
