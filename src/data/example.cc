#include "data/example.h"

#include <algorithm>
#include <cmath>

#include "math/kernels.h"
#include "util/check.h"

namespace activedp {

double SparseDot(const SparseVector& x, const std::vector<double>& w) {
#ifndef NDEBUG
  for (int i : x.indices) DCHECK(i < static_cast<int>(w.size()));
#endif
  return kernels::DotSparse(x.indices.data(), x.values.data(), x.nnz(),
                            w.data());
}

void SparseAxpy(double alpha, const SparseVector& x, std::vector<double>& w) {
  for (size_t i = 0; i < x.indices.size(); ++i) {
    DCHECK(x.indices[i] < static_cast<int>(w.size()));
    w[x.indices[i]] += alpha * x.values[i];
  }
}

void L2Normalize(SparseVector& x) {
  // Canonical 4-lane self-dot + element-wise scale (math/kernels.h): the
  // result is bitwise identical at every SIMD level.
  const double ss =
      kernels::DotDense(x.values.data(), x.values.data(), x.nnz());
  if (ss <= 0.0) return;
  const double inv = 1.0 / std::sqrt(ss);
  kernels::Scale(x.values.data(), x.nnz(), inv);
}

bool Example::HasToken(int id) const {
  auto it = std::lower_bound(
      term_counts.begin(), term_counts.end(), id,
      [](const std::pair<int, int>& tc, int key) { return tc.first < key; });
  return it != term_counts.end() && it->first == id;
}

}  // namespace activedp
