#include "labelmodel/metal_model.h"

#include <algorithm>
#include <cmath>

#include <limits>

#include "labelmodel/spin_utils.h"
#include "math/matrix.h"
#include "util/check.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/numeric_guard.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace activedp {

Status MetalModel::Fit(const LabelMatrix& matrix, int num_classes) {
  if (num_classes != 2) {
    return Status::InvalidArgument(
        "MetalModel supports binary tasks only; use DawidSkeneModel for "
        "multiclass");
  }
  if (matrix.num_cols() == 0)
    return Status::InvalidArgument("label matrix has no LF columns");

  TraceSpan span("metal.fit");
  span.AddArg("rows", matrix.num_rows());
  span.AddArg("lfs", matrix.num_cols());
  MetricsRegistry::Global().counter("metal.fits").Increment();

  // Single fault probe per fit: kError fails the whole fit (retryable —
  // the estimator re-initializes everything below, so a retried fit is
  // bitwise-identical to a fault-free one), kNan poisons the recovered
  // parameters after estimation.
  const FaultKind fault =
      CheckFault("metal.fit", {FaultKind::kNan, FaultKind::kError});
  if (fault == FaultKind::kError) {
    return Status::Internal("injected fault at metal.fit");
  }

  const int n = matrix.num_rows();
  const int m = matrix.num_cols();
  num_lfs_ = m;

  // The matrix's CSR view gives each row's active (column, spin) entries
  // directly — the pairwise pass is O(sum_i |active_i|^2) instead of
  // O(n m^2) with no per-row column scan at all. Rows are processed in
  // fixed-size chunks with per-chunk partial moment matrices combined in
  // chunk order; every accumulated term is a spin product in {-1, +1} (or a
  // count of 1.0), so the sums are exact integers and the combined result is
  // bitwise identical at any thread count. Chunk count is capped so the
  // partial matrices stay O(64 m^2) total.
  matrix.EnsureRows();  // build the CSR view before the parallel region
  const int grain = BoundedGrain(n, 1024, 32);
  const int chunks = NumChunks(n, grain);
  std::vector<Matrix> pair_sum_part(chunks), pair_count_part(chunks);
  std::vector<double> mv_spin(n, 0.0);  // majority-vote spin per row
  RETURN_IF_ERROR(ParallelForChunks(
      ComputePool(), n, grain, options_.limits, "metal.fit",
      [&](int chunk, int begin, int end) {
        Matrix& psum = pair_sum_part[chunk];
        Matrix& pcount = pair_count_part[chunk];
        psum = Matrix(m, m);
        pcount = Matrix(m, m);
        for (int i = begin; i < end; ++i) {
          const ActiveRowView row = matrix.ActiveRow(i);
          double vote = 0.0;
          for (int k = 0; k < row.nnz; ++k) {
            vote += row.labels[k] == 1 ? 1.0 : -1.0;
          }
          mv_spin[i] = vote > 0.0 ? 1.0 : (vote < 0.0 ? -1.0 : 0.0);
          for (int a = 0; a < row.nnz; ++a) {
            const double sa = row.labels[a] == 1 ? 1.0 : -1.0;
            const int ja = row.cols[a];
            for (int b = a + 1; b < row.nnz; ++b) {
              const double sb = row.labels[b] == 1 ? 1.0 : -1.0;
              psum(ja, row.cols[b]) += sa * sb;
              pcount(ja, row.cols[b]) += 1.0;
            }
          }
        }
      }));
  Matrix pair_sum(m, m);
  Matrix pair_count(m, m);
  for (int c = 0; c < chunks; ++c) {
    pair_sum.AddInPlace(pair_sum_part[c]);
    pair_count.AddInPlace(pair_count_part[c]);
  }
  pair_sum_part.clear();
  pair_count_part.clear();

  auto moment = [&](int i, int j, double* out) {
    const int a = std::min(i, j), b = std::max(i, j);
    if (pair_count(a, b) < options_.min_pair_count) return false;
    *out = pair_sum(a, b) / pair_count(a, b);
    return true;
  };

  // Class balance from majority vote.
  double pos = 1.0, total = 2.0;  // Laplace smoothing
  for (int i = 0; i < n; ++i) {
    if (mv_spin[i] == 0.0) continue;
    total += 1.0;
    if (mv_spin[i] > 0.0) pos += 1.0;
  }
  positive_prior_ = pos / total;

  // Agreement-with-majority-vote fallback accuracies, row-driven off the
  // CSR view (O(nnz) instead of O(n m)). Per-chunk partial sums are
  // combined in chunk order; every term is ±1 or a count, so the sums are
  // exact integers and equal the per-column scan's bitwise.
  std::vector<double> fallback(m, 0.5);
  std::vector<std::vector<double>> agree_part(chunks), count_part(chunks);
  RETURN_IF_ERROR(ParallelForChunks(
      ComputePool(), n, grain, options_.limits, "metal.fit",
      [&](int chunk, int begin, int end) {
        std::vector<double>& agree = agree_part[chunk];
        std::vector<double>& count = count_part[chunk];
        agree.assign(m, 0.0);
        count.assign(m, 0.0);
        for (int i = begin; i < end; ++i) {
          if (mv_spin[i] == 0.0) continue;
          const ActiveRowView row = matrix.ActiveRow(i);
          for (int k = 0; k < row.nnz; ++k) {
            const double s = row.labels[k] == 1 ? 1.0 : -1.0;
            count[row.cols[k]] += 1.0;
            agree[row.cols[k]] += s * mv_spin[i];
          }
        }
      }));
  {
    std::vector<double> agree(m, 0.0), count(m, 0.0);
    for (int c = 0; c < chunks; ++c) {
      for (int j = 0; j < m; ++j) {
        agree[j] += agree_part[c][j];
        count[j] += count_part[c][j];
      }
    }
    for (int j = 0; j < m; ++j) {
      fallback[j] = count[j] > 0.0 ? agree[j] / count[j] : 0.5;
    }
  }

  Rng rng(options_.seed);
  accuracies_.assign(m, 0.0);
  const double kMinMoment = 1e-3;
  for (int i = 0; i < m; ++i) {
    if ((i & 63) == 0) RETURN_IF_ERROR(options_.limits.Check("metal.fit"));
    std::vector<double> estimates;
    // Try up to max_triplets random (j, k) companions.
    for (int trial = 0;
         trial < options_.max_triplets_per_lf && m >= 3; ++trial) {
      int j = rng.UniformInt(m - 1);
      if (j >= i) ++j;
      int k = rng.UniformInt(m - 1);
      if (k >= i) ++k;
      if (k == j) continue;
      double mij, mik, mjk;
      if (!moment(i, j, &mij) || !moment(i, k, &mik) || !moment(j, k, &mjk))
        continue;
      if (std::fabs(mjk) < kMinMoment) continue;
      const double sq = std::fabs(mij * mik / mjk);
      estimates.push_back(std::sqrt(sq));
    }
    double a;
    if (!estimates.empty()) {
      std::nth_element(estimates.begin(),
                       estimates.begin() + estimates.size() / 2,
                       estimates.end());
      a = estimates[estimates.size() / 2];
    } else {
      a = fallback[i];
    }
    // Better-than-random sign assumption; keep magnitude within the clamp.
    accuracies_[i] =
        std::clamp(a, -options_.accuracy_clamp, options_.accuracy_clamp);
    if (accuracies_[i] < 0.0) accuracies_[i] = 0.0;
  }

  if (fault == FaultKind::kNan && !accuracies_.empty()) {
    accuracies_[0] = std::numeric_limits<double>::quiet_NaN();
  }
  // Finite guard: a degenerate moment system must surface as a Status the
  // caller can degrade on, never as silent NaN probabilities downstream.
  report_ = ConvergenceReport{};
  report_.iterations = 1;  // closed-form
  report_.finite =
      AllFinite(accuracies_) && std::isfinite(positive_prior_);
  report_.converged = report_.finite;
  if (!report_.finite) {
    TraceInstant("convergence", "metal.fit",
                 "non-finite accuracy parameters");
    num_lfs_ = 0;  // refuse predictions from a poisoned fit
    return Status::Internal(
        "metal fit produced non-finite accuracy parameters");
  }
  return Status::Ok();
}

std::string EncodeSpinAccuracyParams(int num_lfs, double positive_prior,
                                     const std::vector<double>& accuracies) {
  std::string out = std::to_string(num_lfs);
  out += ' ';
  out += FormatExactDouble(positive_prior);
  for (int j = 0; j < num_lfs; ++j) {
    out += ' ';
    out += FormatExactDouble(accuracies[j]);
  }
  return out;
}

Status DecodeSpinAccuracyParams(const std::string& model_name,
                                const std::string& params, int* num_lfs,
                                double* positive_prior,
                                std::vector<double>* accuracies) {
  const std::vector<std::string> tokens = SplitWhitespace(params);
  int m = 0;
  if (tokens.empty() || !ParseInt(tokens[0], &m) || m <= 0) {
    return Status::InvalidArgument(model_name + " params: bad LF count");
  }
  if (static_cast<int>(tokens.size()) != 2 + m) {
    return Status::InvalidArgument(
        model_name + " params: expected " + std::to_string(2 + m) +
        " tokens, got " + std::to_string(tokens.size()));
  }
  double prior = 0.0;
  if (!ParseDouble(tokens[1], &prior) || prior < 0.0 || prior > 1.0) {
    return Status::InvalidArgument(model_name + " params: bad prior '" +
                                   tokens[1] + "'");
  }
  std::vector<double> acc(m);
  for (int j = 0; j < m; ++j) {
    if (!ParseDouble(tokens[2 + j], &acc[j])) {
      return Status::InvalidArgument(model_name +
                                     " params: bad accuracy '" +
                                     tokens[2 + j] + "'");
    }
  }
  *num_lfs = m;
  *positive_prior = prior;
  *accuracies = std::move(acc);
  return Status::Ok();
}

Result<std::string> MetalModel::SerializeParams() const {
  if (num_lfs_ <= 0)
    return Status::FailedPrecondition("Fit before SerializeParams");
  return EncodeSpinAccuracyParams(num_lfs_, positive_prior_, accuracies_);
}

Status MetalModel::RestoreParams(const std::string& params) {
  return DecodeSpinAccuracyParams(name(), params, &num_lfs_,
                                  &positive_prior_, &accuracies_);
}

Result<std::vector<double>> MetalModel::PredictProba(
    const std::vector<int>& weak_labels) const {
  if (num_lfs_ <= 0)
    return Status::FailedPrecondition("Fit before PredictProba");
  if (static_cast<int>(weak_labels.size()) != num_lfs_) {
    return Status::InvalidArgument(
        "weak-label row has " + std::to_string(weak_labels.size()) +
        " entries, model was fit on " + std::to_string(num_lfs_) + " LFs");
  }
  std::vector<double> proba =
      SpinNaiveBayesProba(accuracies_, positive_prior_, weak_labels);
  if (!IsProbabilityVector(proba)) {
    return Status::Internal("metal prediction is not a valid distribution");
  }
  return proba;
}

Result<std::vector<double>> MetalModel::PredictProbaSparse(
    const ActiveRowView& row, int num_cols) const {
  if (num_lfs_ <= 0)
    return Status::FailedPrecondition("Fit before PredictProba");
  if (num_cols != num_lfs_) {
    return Status::InvalidArgument(
        "weak-label row has " + std::to_string(num_cols) +
        " entries, model was fit on " + std::to_string(num_lfs_) + " LFs");
  }
  std::vector<double> proba =
      SpinNaiveBayesProbaSparse(accuracies_, positive_prior_, row);
  if (!IsProbabilityVector(proba)) {
    return Status::Internal("metal prediction is not a valid distribution");
  }
  return proba;
}

}  // namespace activedp
