#ifndef ACTIVEDP_LABELMODEL_GENERATIVE_MODEL_H_
#define ACTIVEDP_LABELMODEL_GENERATIVE_MODEL_H_

#include <string>
#include <vector>

#include "labelmodel/label_model.h"

namespace activedp {

struct GenerativeModelOptions {
  int iterations = 300;
  double learning_rate = 0.05;
  /// L2 shrinkage on the accuracy parameters.
  double l2 = 1e-3;
  /// θ are clamped into [-clamp, clamp] (|θ|=4 already means ~98% accuracy).
  double theta_clamp = 4.0;
};

/// The original data-programming generative model (Ratner et al., NeurIPS
/// 2016 [25]; the Snorkel label model [23]) specialized to binary tasks with
/// accuracy factors:
///     P(λ, y) ∝ exp(θ_0 y + Σ_j θ_j λ_j y),   λ_j ∈ {-1, 0, +1}
/// Because the factors are per-LF, the partition function factorizes
/// (Σ_{λ_j} exp(θ_j λ_j y) = 1 + 2 cosh θ_j, independent of y), so the
/// marginal likelihood of the observed weak labels and its gradient are
/// exact and cheap — no Gibbs sampling needed. Trained by full-batch
/// gradient ascent on the marginal log-likelihood.
class GenerativeModel : public LabelModel {
 public:
  explicit GenerativeModel(GenerativeModelOptions options = {})
      : options_(options) {}

  Status Fit(const LabelMatrix& matrix, int num_classes) override;
  Result<std::vector<double>> PredictProba(
      const std::vector<int>& weak_labels) const override;
  std::string name() const override { return "generative-dp"; }
  /// Params: `<num_lfs> <theta0> <theta_0> .. <theta_{m-1}>`.
  Result<std::string> SerializeParams() const override;
  Status RestoreParams(const std::string& params) override;

  /// Learned accuracy parameter θ_j; the implied accuracy conditional on a
  /// non-abstain vote is sigmoid(2 θ_j).
  double theta(int lf_index) const { return thetas_[lf_index]; }
  double class_bias() const { return theta0_; }

 private:
  GenerativeModelOptions options_;
  std::vector<double> thetas_;
  double theta0_ = 0.0;
  int num_lfs_ = 0;
};

}  // namespace activedp

#endif  // ACTIVEDP_LABELMODEL_GENERATIVE_MODEL_H_
