#include "labelmodel/spin_utils.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace activedp {

std::vector<double> SpinNaiveBayesProba(const std::vector<double>& accuracies,
                                        double positive_prior,
                                        const std::vector<int>& weak_labels) {
  CHECK_EQ(accuracies.size(), weak_labels.size());
  const double prior = std::clamp(positive_prior, 1e-6, 1.0 - 1e-6);
  double log_odds = std::log(prior / (1.0 - prior));
  for (size_t j = 0; j < weak_labels.size(); ++j) {
    const double s = ToSpin(weak_labels[j]);
    if (s == 0.0) continue;
    const double a = std::clamp(accuracies[j], -0.999, 0.999);
    log_odds += std::log((1.0 + a * s) / (1.0 - a * s));
  }
  const double p1 = 1.0 / (1.0 + std::exp(-log_odds));
  return {1.0 - p1, p1};
}

std::vector<double> SpinNaiveBayesProbaSparse(
    const std::vector<double>& accuracies, double positive_prior,
    const ActiveRowView& row) {
  const double prior = std::clamp(positive_prior, 1e-6, 1.0 - 1e-6);
  double log_odds = std::log(prior / (1.0 - prior));
  for (int k = 0; k < row.nnz; ++k) {
    const double s = row.labels[k] == 1 ? 1.0 : -1.0;
    const double a = std::clamp(accuracies[row.cols[k]], -0.999, 0.999);
    log_odds += std::log((1.0 + a * s) / (1.0 - a * s));
  }
  const double p1 = 1.0 / (1.0 + std::exp(-log_odds));
  return {1.0 - p1, p1};
}

}  // namespace activedp
