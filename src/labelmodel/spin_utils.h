#ifndef ACTIVEDP_LABELMODEL_SPIN_UTILS_H_
#define ACTIVEDP_LABELMODEL_SPIN_UTILS_H_

#include <vector>

#include "lf/lf_applier.h"

namespace activedp {

/// Binary weak label -> spin: class 1 -> +1, class 0 -> -1, abstain -> 0.
inline double ToSpin(int weak_label) {
  if (weak_label == kAbstain) return 0.0;
  return weak_label == 1 ? 1.0 : -1.0;
}

/// Naive-Bayes aggregation of binary weak labels given per-LF accuracy
/// parameters a_j = E[λ_j Y | λ_j active] ∈ (-1, 1) and the positive-class
/// prior: P(λ_j = s | Y = y) = (1 + a_j s y) / 2 conditional on activation.
/// Returns {P(y=0|λ), P(y=1|λ)}. Used by both MeTaL-style label models.
std::vector<double> SpinNaiveBayesProba(const std::vector<double>& accuracies,
                                        double positive_prior,
                                        const std::vector<int>& weak_labels);

/// Sparse variant over the non-abstain entries of a row (ascending column
/// order). Bitwise identical to the dense overload, which skips abstains in
/// the same column order.
std::vector<double> SpinNaiveBayesProbaSparse(
    const std::vector<double>& accuracies, double positive_prior,
    const ActiveRowView& row);

}  // namespace activedp

#endif  // ACTIVEDP_LABELMODEL_SPIN_UTILS_H_
