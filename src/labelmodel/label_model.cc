#include "labelmodel/label_model.h"

#include "labelmodel/dawid_skene.h"
#include "labelmodel/generative_model.h"
#include "labelmodel/majority_vote.h"
#include "labelmodel/metal_completion.h"
#include "labelmodel/metal_model.h"
#include "math/vector_ops.h"
#include "util/string_util.h"

namespace activedp {

Result<std::vector<std::vector<double>>> LabelModel::PredictProbaAll(
    const LabelMatrix& matrix) const {
  std::vector<std::vector<double>> out;
  out.reserve(matrix.num_rows());
  for (int i = 0; i < matrix.num_rows(); ++i) {
    ASSIGN_OR_RETURN(std::vector<double> proba,
                     PredictProba(matrix.Row(i)));
    out.push_back(std::move(proba));
  }
  return out;
}

Result<std::vector<int>> LabelModel::PredictAll(
    const LabelMatrix& matrix) const {
  std::vector<int> out;
  out.reserve(matrix.num_rows());
  for (int i = 0; i < matrix.num_rows(); ++i) {
    if (!matrix.AnyActive(i)) {
      out.push_back(kAbstain);
      continue;
    }
    ASSIGN_OR_RETURN(std::vector<double> proba,
                     PredictProba(matrix.Row(i)));
    out.push_back(ArgMax(proba));
  }
  return out;
}

std::unique_ptr<LabelModel> MakeLabelModel(LabelModelType type) {
  switch (type) {
    case LabelModelType::kMajorityVote:
      return std::make_unique<MajorityVoteModel>();
    case LabelModelType::kDawidSkene:
      return std::make_unique<DawidSkeneModel>();
    case LabelModelType::kMetal:
      return std::make_unique<MetalModel>();
    case LabelModelType::kMetalCompletion:
      return std::make_unique<MetalCompletionModel>();
    case LabelModelType::kGenerative:
      return std::make_unique<GenerativeModel>();
  }
  return std::make_unique<MetalCompletionModel>();
}

LabelModelType ParseLabelModelType(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "mv" || lower == "majority-vote") {
    return LabelModelType::kMajorityVote;
  }
  if (lower == "ds" || lower == "dawid-skene") {
    return LabelModelType::kDawidSkene;
  }
  if (lower == "metal" || lower == "triplet") {
    return LabelModelType::kMetal;
  }
  if (lower == "generative" || lower == "snorkel" || lower == "dp") {
    return LabelModelType::kGenerative;
  }
  return LabelModelType::kMetalCompletion;
}

}  // namespace activedp
