#include "labelmodel/label_model.h"

#include "labelmodel/dawid_skene.h"
#include "labelmodel/generative_model.h"
#include "labelmodel/majority_vote.h"
#include "labelmodel/metal_completion.h"
#include "labelmodel/metal_model.h"
#include "math/vector_ops.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace activedp {
namespace {

/// Shared chunked driver for the batch prediction paths. Rows are
/// independent (PredictProba is const and models hold no mutable state), so
/// per-row outputs are bitwise identical at any thread count. Error
/// reporting is deterministic: every chunk records its first failing row and
/// the lowest failing row overall wins, matching the serial "first row error
/// wins" contract.
Status PredictRows(int num_rows,
                   const std::function<Status(int row)>& predict_row) {
  const int grain = BoundedGrain(num_rows, 256, 1024);
  const int chunks = NumChunks(num_rows, grain);
  std::vector<std::pair<int, Status>> first_error(
      chunks, {num_rows, Status::Ok()});
  RETURN_IF_ERROR(ParallelForChunks(
      ComputePool(), num_rows, grain, RunLimits::Unlimited(),
      "labelmodel.predict", [&](int chunk, int begin, int end) {
        for (int i = begin; i < end; ++i) {
          Status status = predict_row(i);
          if (!status.ok()) {
            first_error[chunk] = {i, std::move(status)};
            return;
          }
        }
      }));
  for (const auto& [row, status] : first_error) {
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

}  // namespace

Result<std::string> LabelModel::SerializeParams() const {
  return Status::Unimplemented("label model '" + name() +
                               "' has no serializable parameter form");
}

Status LabelModel::RestoreParams(const std::string& params) {
  (void)params;
  return Status::Unimplemented("label model '" + name() +
                               "' has no serializable parameter form");
}

Result<std::vector<double>> LabelModel::PredictProbaSparse(
    const ActiveRowView& row, int num_cols) const {
  std::vector<int> weak_labels(num_cols, kAbstain);
  for (int k = 0; k < row.nnz; ++k) weak_labels[row.cols[k]] = row.labels[k];
  return PredictProba(weak_labels);
}

Result<std::vector<std::vector<double>>> LabelModel::PredictProbaAll(
    const LabelMatrix& matrix) const {
  // Span at the caller level; the chunked per-row work below may run on
  // compute-pool workers, which must stay trace-silent (determinism).
  TraceSpan span("labelmodel.predict_all");
  span.AddArg("rows", matrix.num_rows());
  matrix.EnsureRows();  // build the CSR view before the parallel region
  const int num_cols = matrix.num_cols();
  std::vector<std::vector<double>> out(matrix.num_rows());
  RETURN_IF_ERROR(PredictRows(matrix.num_rows(), [&](int i) -> Status {
    ASSIGN_OR_RETURN(out[i],
                     PredictProbaSparse(matrix.ActiveRow(i), num_cols));
    return Status::Ok();
  }));
  return out;
}

Result<std::vector<int>> LabelModel::PredictAll(
    const LabelMatrix& matrix) const {
  TraceSpan span("labelmodel.predict_all");
  span.AddArg("rows", matrix.num_rows());
  matrix.EnsureRows();  // build the CSR view before the parallel region
  const int num_cols = matrix.num_cols();
  std::vector<int> out(matrix.num_rows(), kAbstain);
  RETURN_IF_ERROR(PredictRows(matrix.num_rows(), [&](int i) -> Status {
    if (!matrix.AnyActive(i)) return Status::Ok();  // keep kAbstain, O(1)
    ASSIGN_OR_RETURN(std::vector<double> proba,
                     PredictProbaSparse(matrix.ActiveRow(i), num_cols));
    out[i] = ArgMax(proba);
    return Status::Ok();
  }));
  return out;
}

std::unique_ptr<LabelModel> MakeLabelModel(LabelModelType type) {
  switch (type) {
    case LabelModelType::kMajorityVote:
      return std::make_unique<MajorityVoteModel>();
    case LabelModelType::kDawidSkene:
      return std::make_unique<DawidSkeneModel>();
    case LabelModelType::kMetal:
      return std::make_unique<MetalModel>();
    case LabelModelType::kMetalCompletion:
      return std::make_unique<MetalCompletionModel>();
    case LabelModelType::kGenerative:
      return std::make_unique<GenerativeModel>();
  }
  return std::make_unique<MetalCompletionModel>();
}

Result<std::unique_ptr<LabelModel>> MakeLabelModelByName(
    const std::string& name) {
  if (name == "majority-vote") {
    return MakeLabelModel(LabelModelType::kMajorityVote);
  }
  if (name == "dawid-skene") {
    return MakeLabelModel(LabelModelType::kDawidSkene);
  }
  if (name == "metal") return MakeLabelModel(LabelModelType::kMetal);
  if (name == "metal-completion") {
    return MakeLabelModel(LabelModelType::kMetalCompletion);
  }
  if (name == "generative-dp") {
    return MakeLabelModel(LabelModelType::kGenerative);
  }
  return Status::InvalidArgument("unknown label-model name '" + name + "'");
}

LabelModelType ParseLabelModelType(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "mv" || lower == "majority-vote") {
    return LabelModelType::kMajorityVote;
  }
  if (lower == "ds" || lower == "dawid-skene") {
    return LabelModelType::kDawidSkene;
  }
  if (lower == "metal" || lower == "triplet") {
    return LabelModelType::kMetal;
  }
  if (lower == "generative" || lower == "snorkel" || lower == "dp") {
    return LabelModelType::kGenerative;
  }
  return LabelModelType::kMetalCompletion;
}

}  // namespace activedp
