#include "labelmodel/generative_model.h"

#include <algorithm>
#include <cmath>

#include "labelmodel/spin_utils.h"
#include "util/check.h"
#include "util/string_util.h"

namespace activedp {
namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

Status GenerativeModel::Fit(const LabelMatrix& matrix, int num_classes) {
  if (num_classes != 2) {
    return Status::InvalidArgument(
        "GenerativeModel supports binary tasks only");
  }
  if (matrix.num_cols() == 0)
    return Status::InvalidArgument("label matrix has no LF columns");

  const int n = matrix.num_rows();
  const int m = matrix.num_cols();
  num_lfs_ = m;
  thetas_.assign(m, 0.2);  // mildly better-than-random initialization
  theta0_ = 0.0;

  // Per-row spin lists (sparse) for fast gradient passes.
  std::vector<std::vector<std::pair<int, double>>> active(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      const double s = ToSpin(matrix.At(i, j));
      if (s != 0.0) active[i].emplace_back(j, s);
    }
  }

  std::vector<double> grad(m);
  for (int iter = 0; iter < options_.iterations; ++iter) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad0 = 0.0;

    // Data term: E_y[λ_j y | λ_i] summed over rows. With y ∈ {-1, +1} and
    // score(y) = θ_0 y + Σ_j θ_j λ_ij y, the posterior is
    // p_i = P(y=+1 | λ_i) = sigmoid(2 * score_half) where
    // score_half = θ_0 + Σ θ_j λ_ij.
    for (int i = 0; i < n; ++i) {
      double score_half = theta0_;
      for (const auto& [j, s] : active[i]) score_half += thetas_[j] * s;
      const double p = Sigmoid(2.0 * score_half);
      const double ey = 2.0 * p - 1.0;  // E[y | λ_i]
      grad0 += ey;
      for (const auto& [j, s] : active[i]) grad[j] += s * ey;
    }

    // Model term: n * E_model[λ_j y]. Under the factorized model
    // E[λ_j y] = 2 sinh(θ_j) / (1 + 2 cosh θ_j); E[y] = tanh(θ_0) under the
    // class-bias factor alone (the per-LF sums are independent of y).
    for (int j = 0; j < m; ++j) {
      const double expected =
          2.0 * std::sinh(thetas_[j]) / (1.0 + 2.0 * std::cosh(thetas_[j]));
      grad[j] -= n * expected;
      grad[j] -= options_.l2 * n * thetas_[j];
    }
    grad0 -= n * std::tanh(theta0_);

    const double step = options_.learning_rate / n;
    for (int j = 0; j < m; ++j) {
      thetas_[j] = std::clamp(thetas_[j] + step * grad[j],
                              -options_.theta_clamp, options_.theta_clamp);
    }
    theta0_ = std::clamp(theta0_ + step * grad0, -options_.theta_clamp,
                         options_.theta_clamp);
  }
  return Status::Ok();
}

Result<std::string> GenerativeModel::SerializeParams() const {
  if (num_lfs_ <= 0)
    return Status::FailedPrecondition("Fit before SerializeParams");
  std::string out = std::to_string(num_lfs_);
  out += ' ';
  out += FormatExactDouble(theta0_);
  for (double t : thetas_) {
    out += ' ';
    out += FormatExactDouble(t);
  }
  return out;
}

Status GenerativeModel::RestoreParams(const std::string& params) {
  const std::vector<std::string> tokens = SplitWhitespace(params);
  int m = 0;
  if (tokens.empty() || !ParseInt(tokens[0], &m) || m <= 0) {
    return Status::InvalidArgument("generative-dp params: bad LF count");
  }
  if (static_cast<int>(tokens.size()) != 2 + m) {
    return Status::InvalidArgument(
        "generative-dp params: expected " + std::to_string(2 + m) +
        " tokens, got " + std::to_string(tokens.size()));
  }
  double theta0 = 0.0;
  if (!ParseDouble(tokens[1], &theta0)) {
    return Status::InvalidArgument("generative-dp params: bad theta0 '" +
                                   tokens[1] + "'");
  }
  std::vector<double> thetas(m);
  for (int j = 0; j < m; ++j) {
    if (!ParseDouble(tokens[2 + j], &thetas[j])) {
      return Status::InvalidArgument("generative-dp params: bad theta '" +
                                     tokens[2 + j] + "'");
    }
  }
  num_lfs_ = m;
  theta0_ = theta0;
  thetas_ = std::move(thetas);
  return Status::Ok();
}

Result<std::vector<double>> GenerativeModel::PredictProba(
    const std::vector<int>& weak_labels) const {
  if (num_lfs_ <= 0)
    return Status::FailedPrecondition("Fit before PredictProba");
  if (static_cast<int>(weak_labels.size()) != num_lfs_) {
    return Status::InvalidArgument(
        "weak-label row has " + std::to_string(weak_labels.size()) +
        " entries, model was fit on " + std::to_string(num_lfs_) + " LFs");
  }
  double score_half = theta0_;
  for (int j = 0; j < num_lfs_; ++j) {
    score_half += thetas_[j] * ToSpin(weak_labels[j]);
  }
  const double p1 = Sigmoid(2.0 * score_half);
  if (!std::isfinite(p1)) {
    return Status::Internal(
        "generative model prediction is non-finite");
  }
  return std::vector<double>{1.0 - p1, p1};
}

}  // namespace activedp
