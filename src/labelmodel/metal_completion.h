#ifndef ACTIVEDP_LABELMODEL_METAL_COMPLETION_H_
#define ACTIVEDP_LABELMODEL_METAL_COMPLETION_H_

#include <optional>
#include <string>
#include <vector>

#include "labelmodel/label_model.h"
#include "labelmodel/metal_model.h"

namespace activedp {

struct MetalCompletionOptions {
  /// Ridge added to the spin covariance before inversion.
  double ridge = 0.01;
  /// Gradient descent on the rank-one completion objective.
  int gd_iterations = 400;
  double gd_learning_rate = 0.01;
  /// Accuracy parameters are clamped into [-clamp, clamp].
  double accuracy_clamp = 0.95;
  /// Below this many LFs the rank-one completion is under-determined (the
  /// off-diagonal system has too few equations) and the model delegates to
  /// the robust triplet estimator (MetalModel).
  int min_lfs_for_completion = 8;
  /// Checked per chunk inside the row scans and covariance build; trips as
  /// DeadlineExceeded / Cancelled. Propagated into the triplet fallback.
  RunLimits limits;
};

/// The MeTaL label model (Ratner et al. 2019) specialized to one binary
/// task: LF outputs are mapped to spins; the inverse of their covariance
/// satisfies
///     Σ_O^{-1} = K - z z^T   (off-diagonal, under conditional independence)
/// where z ∝ Σ_O^{-1} Cov(λ, Y), so z is recovered by minimizing
///     L(z) = Σ_{i≠j} (K_ij + z_i z_j)^2
/// (the matrix-completion step), and LF accuracies follow from
/// Cov(λ, Y) = Σ_O z / sqrt(d). Unlike the robust median-of-triplets
/// estimator in MetalModel, this faithful formulation fits *every*
/// off-diagonal entry and therefore inherits real MeTaL's sensitivity to
/// dependent (correlated) LFs — the pathology LabelPick exists to remove
/// (§3.4). This is the paper's default label model (§4.1.3).
class MetalCompletionModel : public LabelModel {
 public:
  explicit MetalCompletionModel(MetalCompletionOptions options = {})
      : options_(options) {}

  Status Fit(const LabelMatrix& matrix, int num_classes) override;
  Result<std::vector<double>> PredictProba(
      const std::vector<int>& weak_labels) const override;
  Result<std::vector<double>> PredictProbaSparse(
      const ActiveRowView& row, int num_cols) const override;
  std::string name() const override { return "metal-completion"; }
  /// Params: `<num_lfs> <positive_prior> <a_0> .. <a_{m-1}>`, using the
  /// effective (fallback-aware) parameters; restore always lands in the
  /// completion state, which predicts identically.
  Result<std::string> SerializeParams() const override;
  Status RestoreParams(const std::string& params) override;
  void set_limits(const RunLimits& limits) override {
    options_.limits = limits;
  }

  /// Recovered accuracy parameter a_j = E[λ_j Y | λ_j active].
  double accuracy_param(int lf_index) const {
    if (fallback_.has_value()) return fallback_->accuracy_param(lf_index);
    return accuracies_[lf_index];
  }
  double positive_prior() const {
    if (fallback_.has_value()) return fallback_->positive_prior();
    return positive_prior_;
  }
  /// True when the small-m triplet fallback handled the last Fit.
  bool used_fallback() const { return fallback_.has_value(); }

 private:
  MetalCompletionOptions options_;
  std::vector<double> accuracies_;
  double positive_prior_ = 0.5;
  int num_lfs_ = 0;
  /// Engaged instead of the completion solve when m is small.
  std::optional<MetalModel> fallback_;
};

}  // namespace activedp

#endif  // ACTIVEDP_LABELMODEL_METAL_COMPLETION_H_
