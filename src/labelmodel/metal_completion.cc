#include "labelmodel/metal_completion.h"

#include <algorithm>
#include <cmath>

#include "labelmodel/spin_utils.h"
#include "math/kernels.h"
#include "math/linalg.h"
#include "math/matrix.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace activedp {

Status MetalCompletionModel::Fit(const LabelMatrix& matrix, int num_classes) {
  if (num_classes != 2) {
    return Status::InvalidArgument(
        "MetalCompletionModel supports binary tasks only");
  }
  if (matrix.num_cols() == 0)
    return Status::InvalidArgument("label matrix has no LF columns");

  const int n = matrix.num_rows();
  const int m = matrix.num_cols();
  num_lfs_ = m;

  TraceSpan span("metal_completion.fit");
  span.AddArg("rows", n);
  span.AddArg("lfs", m);

  MetalModelOptions fallback_options;
  fallback_options.limits = options_.limits;
  if (m < options_.min_lfs_for_completion) {
    fallback_.emplace(fallback_options);
    return fallback_->Fit(matrix, num_classes);
  }
  fallback_.reset();

  // Spin means, coverages and class balance via majority vote, row-driven
  // off the matrix's CSR view (O(nnz) instead of O(n m)). Chunked over
  // rows with per-chunk partial sums combined in chunk order; every term is
  // a spin in {-1, +1} or a count, so the sums are exact integers and the
  // result is bitwise identical at any thread count.
  matrix.EnsureRows();  // build the CSR view before the parallel regions
  const int grain = BoundedGrain(n, 1024, 64);
  const int chunks = NumChunks(n, grain);
  std::vector<std::vector<double>> mean_part(chunks), coverage_part(chunks);
  std::vector<double> mv_positive_part(chunks, 0.0), mv_total_part(chunks, 0.0);
  RETURN_IF_ERROR(ParallelForChunks(
      ComputePool(), n, grain, options_.limits, "metal.completion",
      [&](int chunk, int begin, int end) {
        std::vector<double>& pmean = mean_part[chunk];
        std::vector<double>& pcov = coverage_part[chunk];
        pmean.assign(m, 0.0);
        pcov.assign(m, 0.0);
        for (int i = begin; i < end; ++i) {
          const ActiveRowView row = matrix.ActiveRow(i);
          double vote = 0.0;
          for (int k = 0; k < row.nnz; ++k) {
            const double s = row.labels[k] == 1 ? 1.0 : -1.0;
            pmean[row.cols[k]] += s;
            pcov[row.cols[k]] += 1.0;
            vote += s;
          }
          if (vote != 0.0) {
            mv_total_part[chunk] += 1.0;
            if (vote > 0.0) mv_positive_part[chunk] += 1.0;
          }
        }
      }));
  std::vector<double> mean(m, 0.0), coverage(m, 0.0);
  double mv_positive = 1.0, mv_total = 2.0;  // Laplace
  for (int c = 0; c < chunks; ++c) {
    for (int j = 0; j < m; ++j) {
      mean[j] += mean_part[c][j];
      coverage[j] += coverage_part[c][j];
    }
    mv_positive += mv_positive_part[c];
    mv_total += mv_total_part[c];
  }
  for (int j = 0; j < m; ++j) {
    mean[j] /= n;
    coverage[j] /= n;
  }
  positive_prior_ = mv_positive / mv_total;
  const double ey = 2.0 * positive_prior_ - 1.0;
  const double var_y = std::max(1e-3, 1.0 - ey * ey);

  // Spin covariance with a ridge (abstains contribute 0 spins), via the
  // pairwise active-product matrix P = S^T S of the spin CSR matrix:
  //   Σ(j, k) = P(j, k) / n − mean_j · mean_k.
  // This is the textbook expansion of Σ_i (s_ij − m_j)(s_ik − m_k) / n and
  // costs O(sum_i |active_i|^2) instead of O(n m^2). Every entry of P is an
  // exact integer sum of ±1 products accumulated with chunk-ordered
  // partials, so P — and therefore Σ — is bitwise identical at any thread
  // count.
  RETURN_IF_ERROR(options_.limits.Check("metal.completion"));
  Matrix sigma = matrix.SpinCsr().SelfInnerProduct();
  RETURN_IF_ERROR(options_.limits.Check("metal.completion"));
  for (int j = 0; j < m; ++j) {
    for (int k = j; k < m; ++k) {
      sigma(j, k) = sigma(j, k) / n - mean[j] * mean[k];
      sigma(k, j) = sigma(j, k);
    }
    sigma(j, j) += options_.ridge;
  }

  ASSIGN_OR_RETURN(Matrix k_matrix, InverseSpd(sigma));

  // Rank-one completion: minimize L(z) = sum_{i != j} (K_ij + z_i z_j)^2 by
  // gradient descent. Initialize from sqrt of |K| row means with the
  // better-than-random sign convention.
  std::vector<double> z(m, 0.0);
  for (int i = 0; i < m; ++i) {
    double acc = 0.0;
    for (int j = 0; j < m; ++j) {
      if (j != i) acc += std::fabs(k_matrix(i, j));
    }
    z[i] = std::sqrt(acc / std::max(1, m - 1)) + 1e-3;
  }
  // Scale the step size by the magnitude of K so a badly conditioned
  // covariance (e.g. duplicated LFs pushing Σ toward singularity) cannot
  // blow the iteration up, and keep z in a sane box.
  double max_abs_k = 1.0;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      if (j != i) max_abs_k = std::max(max_abs_k, std::fabs(k_matrix(i, j)));
    }
  }
  const double step = options_.gd_learning_rate / max_abs_k;
  std::vector<double> grad(m);
  // grad_i = 4 * sum_{j != i} (K_ij + z_i z_j) z_j, split into vectorized
  // dots plus diagonal corrections:
  //   sum_j K_ij z_j − K_ii z_i + z_i (z·z − z_i^2).
  // Both dots use the canonical 4-lane kernel, so each grad[i] is a fixed
  // association independent of the thread count and SIMD level. Small
  // systems stay serial: the launch would cost more than the sweep.
  ThreadPool* const gd_pool = m >= 64 ? ComputePool() : nullptr;
  const int gd_grain = BoundedGrain(m, 16, 64);
  for (int iter = 0; iter < options_.gd_iterations; ++iter) {
    if ((iter & 31) == 0)
      RETURN_IF_ERROR(options_.limits.Check("metal.completion"));
    const double zz = kernels::DotDense(z.data(), z.data(), m);
    const Status gd_status = ParallelForChunks(
        gd_pool, m, gd_grain, RunLimits::Unlimited(), "metal.completion",
        [&](int /*chunk*/, int begin, int end) {
          for (int i = begin; i < end; ++i) {
            const double g =
                kernels::DotDense(k_matrix.RowPtr(i), z.data(), m) -
                k_matrix(i, i) * z[i] + z[i] * (zz - z[i] * z[i]);
            grad[i] = 4.0 * g;
          }
        });
    CHECK(gd_status.ok());  // unlimited budget: Check can never trip
    for (int i = 0; i < m; ++i) {
      z[i] = std::clamp(z[i] - step * grad[i], -100.0, 100.0);
    }
  }
  MetricsRegistry::Global()
      .counter("metal_completion.gd_iterations")
      .Increment(options_.gd_iterations);

  // Cov(λ, Y) = Σ_O z / sqrt(d) with d = (1 + z' Σ_O z) / Var(Y).
  std::vector<double> sigma_z = sigma.MultiplyVector(z);
  const double ztsz = kernels::DotDense(z.data(), sigma_z.data(), m);
  const double d = std::max(1e-6, (1.0 + ztsz) / var_y);
  std::vector<double> cov_ly(m);
  for (int i = 0; i < m; ++i) cov_ly[i] = sigma_z[i] / std::sqrt(d);

  // Global sign: LFs are better than random on average.
  double sign_probe = 0.0;
  for (int i = 0; i < m; ++i) sign_probe += cov_ly[i];
  const double sign = sign_probe >= 0.0 ? 1.0 : -1.0;

  // a_i = E[λ_i Y | active] = (Cov(λ_i, Y) + E[λ_i] E[Y]) / coverage_i.
  accuracies_.assign(m, 0.0);
  bool finite = true;
  for (int i = 0; i < m; ++i) {
    if (coverage[i] <= 0.0) continue;
    const double e_ly = sign * cov_ly[i] + mean[i] * ey;
    accuracies_[i] = std::clamp(e_ly / coverage[i], -options_.accuracy_clamp,
                                options_.accuracy_clamp);
    if (!std::isfinite(accuracies_[i])) finite = false;
  }
  if (!finite) {
    // The completion solve diverged; fall back to the robust estimator.
    fallback_.emplace(fallback_options);
    return fallback_->Fit(matrix, num_classes);
  }
  return Status::Ok();
}

Result<std::string> MetalCompletionModel::SerializeParams() const {
  if (num_lfs_ <= 0)
    return Status::FailedPrecondition("Fit before SerializeParams");
  // Use the effective accessors so a fallback-handled fit serializes the
  // parameters that actually drive PredictProba; both paths share
  // SpinNaiveBayesProba, so restoring into completion state is bitwise
  // prediction-equivalent.
  std::vector<double> accuracies(num_lfs_);
  for (int j = 0; j < num_lfs_; ++j) accuracies[j] = accuracy_param(j);
  return EncodeSpinAccuracyParams(num_lfs_, positive_prior(), accuracies);
}

Status MetalCompletionModel::RestoreParams(const std::string& params) {
  RETURN_IF_ERROR(DecodeSpinAccuracyParams(
      name(), params, &num_lfs_, &positive_prior_, &accuracies_));
  fallback_.reset();
  return Status::Ok();
}

Result<std::vector<double>> MetalCompletionModel::PredictProba(
    const std::vector<int>& weak_labels) const {
  if (num_lfs_ <= 0)
    return Status::FailedPrecondition("Fit before PredictProba");
  if (fallback_.has_value()) return fallback_->PredictProba(weak_labels);
  if (static_cast<int>(weak_labels.size()) != num_lfs_) {
    return Status::InvalidArgument(
        "weak-label row has " + std::to_string(weak_labels.size()) +
        " entries, model was fit on " + std::to_string(num_lfs_) + " LFs");
  }
  return SpinNaiveBayesProba(accuracies_, positive_prior_, weak_labels);
}

Result<std::vector<double>> MetalCompletionModel::PredictProbaSparse(
    const ActiveRowView& row, int num_cols) const {
  if (num_lfs_ <= 0)
    return Status::FailedPrecondition("Fit before PredictProba");
  if (fallback_.has_value()) {
    return fallback_->PredictProbaSparse(row, num_cols);
  }
  if (num_cols != num_lfs_) {
    return Status::InvalidArgument(
        "weak-label row has " + std::to_string(num_cols) +
        " entries, model was fit on " + std::to_string(num_lfs_) + " LFs");
  }
  return SpinNaiveBayesProbaSparse(accuracies_, positive_prior_, row);
}

}  // namespace activedp
