#include "labelmodel/metal_completion.h"

#include <algorithm>
#include <cmath>

#include "labelmodel/spin_utils.h"
#include "math/linalg.h"
#include "math/matrix.h"
#include "util/check.h"

namespace activedp {

Status MetalCompletionModel::Fit(const LabelMatrix& matrix, int num_classes) {
  if (num_classes != 2) {
    return Status::InvalidArgument(
        "MetalCompletionModel supports binary tasks only");
  }
  if (matrix.num_cols() == 0)
    return Status::InvalidArgument("label matrix has no LF columns");

  const int n = matrix.num_rows();
  const int m = matrix.num_cols();
  num_lfs_ = m;

  if (m < options_.min_lfs_for_completion) {
    fallback_.emplace();
    return fallback_->Fit(matrix, num_classes);
  }
  fallback_.reset();

  // Spin means, coverages and class balance via majority vote.
  std::vector<double> mean(m, 0.0), coverage(m, 0.0);
  double mv_positive = 1.0, mv_total = 2.0;  // Laplace
  for (int i = 0; i < n; ++i) {
    double vote = 0.0;
    for (int j = 0; j < m; ++j) {
      const double s = ToSpin(matrix.At(i, j));
      mean[j] += s;
      if (s != 0.0) coverage[j] += 1.0;
      vote += s;
    }
    if (vote != 0.0) {
      mv_total += 1.0;
      if (vote > 0.0) mv_positive += 1.0;
    }
  }
  for (int j = 0; j < m; ++j) {
    mean[j] /= n;
    coverage[j] /= n;
  }
  positive_prior_ = mv_positive / mv_total;
  const double ey = 2.0 * positive_prior_ - 1.0;
  const double var_y = std::max(1e-3, 1.0 - ey * ey);

  // Spin covariance with a ridge (abstains contribute 0 spins).
  Matrix sigma(m, m);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      const double sj = ToSpin(matrix.At(i, j)) - mean[j];
      if (sj == 0.0) continue;
      for (int k = j; k < m; ++k) {
        sigma(j, k) += sj * (ToSpin(matrix.At(i, k)) - mean[k]);
      }
    }
  }
  for (int j = 0; j < m; ++j) {
    for (int k = j; k < m; ++k) {
      sigma(j, k) /= n;
      sigma(k, j) = sigma(j, k);
    }
    sigma(j, j) += options_.ridge;
  }

  ASSIGN_OR_RETURN(Matrix k_matrix, InverseSpd(sigma));

  // Rank-one completion: minimize L(z) = sum_{i != j} (K_ij + z_i z_j)^2 by
  // gradient descent. Initialize from sqrt of |K| row means with the
  // better-than-random sign convention.
  std::vector<double> z(m, 0.0);
  for (int i = 0; i < m; ++i) {
    double acc = 0.0;
    for (int j = 0; j < m; ++j) {
      if (j != i) acc += std::fabs(k_matrix(i, j));
    }
    z[i] = std::sqrt(acc / std::max(1, m - 1)) + 1e-3;
  }
  // Scale the step size by the magnitude of K so a badly conditioned
  // covariance (e.g. duplicated LFs pushing Σ toward singularity) cannot
  // blow the iteration up, and keep z in a sane box.
  double max_abs_k = 1.0;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      if (j != i) max_abs_k = std::max(max_abs_k, std::fabs(k_matrix(i, j)));
    }
  }
  const double step = options_.gd_learning_rate / max_abs_k;
  std::vector<double> grad(m);
  for (int iter = 0; iter < options_.gd_iterations; ++iter) {
    // grad_i = 4 * sum_{j != i} (K_ij + z_i z_j) z_j.
    for (int i = 0; i < m; ++i) {
      double g = 0.0;
      for (int j = 0; j < m; ++j) {
        if (j == i) continue;
        g += (k_matrix(i, j) + z[i] * z[j]) * z[j];
      }
      grad[i] = 4.0 * g;
    }
    for (int i = 0; i < m; ++i) {
      z[i] = std::clamp(z[i] - step * grad[i], -100.0, 100.0);
    }
  }

  // Cov(λ, Y) = Σ_O z / sqrt(d) with d = (1 + z' Σ_O z) / Var(Y).
  std::vector<double> sigma_z = sigma.MultiplyVector(z);
  double ztsz = 0.0;
  for (int i = 0; i < m; ++i) ztsz += z[i] * sigma_z[i];
  const double d = std::max(1e-6, (1.0 + ztsz) / var_y);
  std::vector<double> cov_ly(m);
  for (int i = 0; i < m; ++i) cov_ly[i] = sigma_z[i] / std::sqrt(d);

  // Global sign: LFs are better than random on average.
  double sign_probe = 0.0;
  for (int i = 0; i < m; ++i) sign_probe += cov_ly[i];
  const double sign = sign_probe >= 0.0 ? 1.0 : -1.0;

  // a_i = E[λ_i Y | active] = (Cov(λ_i, Y) + E[λ_i] E[Y]) / coverage_i.
  accuracies_.assign(m, 0.0);
  bool finite = true;
  for (int i = 0; i < m; ++i) {
    if (coverage[i] <= 0.0) continue;
    const double e_ly = sign * cov_ly[i] + mean[i] * ey;
    accuracies_[i] = std::clamp(e_ly / coverage[i], -options_.accuracy_clamp,
                                options_.accuracy_clamp);
    if (!std::isfinite(accuracies_[i])) finite = false;
  }
  if (!finite) {
    // The completion solve diverged; fall back to the robust estimator.
    fallback_.emplace();
    return fallback_->Fit(matrix, num_classes);
  }
  return Status::Ok();
}

Result<std::vector<double>> MetalCompletionModel::PredictProba(
    const std::vector<int>& weak_labels) const {
  if (num_lfs_ <= 0)
    return Status::FailedPrecondition("Fit before PredictProba");
  if (fallback_.has_value()) return fallback_->PredictProba(weak_labels);
  if (static_cast<int>(weak_labels.size()) != num_lfs_) {
    return Status::InvalidArgument(
        "weak-label row has " + std::to_string(weak_labels.size()) +
        " entries, model was fit on " + std::to_string(num_lfs_) + " LFs");
  }
  return SpinNaiveBayesProba(accuracies_, positive_prior_, weak_labels);
}

}  // namespace activedp
