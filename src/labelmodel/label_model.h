#ifndef ACTIVEDP_LABELMODEL_LABEL_MODEL_H_
#define ACTIVEDP_LABELMODEL_LABEL_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "lf/lf_applier.h"
#include "util/deadline.h"
#include "util/result.h"

namespace activedp {

/// The generative model of data programming (§2.1): estimates LF accuracies
/// without ground truth from the weak-label matrix and turns each row of
/// weak labels into a probabilistic label f_l(x, Λ).
class LabelModel {
 public:
  virtual ~LabelModel() = default;

  /// Fits the model to the training weak-label matrix. Internal when the
  /// solve produces non-finite parameters (callers degrade, see
  /// core/recovery.h).
  virtual Status Fit(const LabelMatrix& matrix, int num_classes) = 0;

  /// Probabilistic label for one row of weak labels (entries in
  /// {kAbstain, 0..C-1}). On an all-abstain row returns the estimated class
  /// prior (callers decide coverage semantics separately). Untrusted
  /// runtime state surfaces as Status, never aborts: FailedPrecondition
  /// before Fit, InvalidArgument when the row's width or entries do not
  /// match the fitted model, Internal when the fitted parameters yield a
  /// non-finite distribution.
  virtual Result<std::vector<double>> PredictProba(
      const std::vector<int>& weak_labels) const = 0;

  /// Probabilistic label from the non-abstain entries of a row (ascending
  /// column order) plus the row's full width. Semantically — and for the
  /// overriding models bitwise — identical to densifying the view and
  /// calling PredictProba; the base implementation does exactly that.
  /// Models on the serving / batch hot path override this to skip the
  /// O(num_cols) densify+rescan per row.
  virtual Result<std::vector<double>> PredictProbaSparse(
      const ActiveRowView& row, int num_cols) const;

  virtual std::string name() const = 0;

  /// Serializes the fitted predict-time parameters as one line of
  /// space-separated tokens (doubles rendered with %.17g, so restored
  /// predictions are bitwise-identical to the source model's). The token
  /// layout is model-specific; pair with RestoreParams on a model of the
  /// same name() — serve/model_snapshot.cc persists `name()` next to the
  /// params and rebuilds via MakeLabelModelByName. FailedPrecondition
  /// before Fit; Unimplemented for models without a serializable form.
  virtual Result<std::string> SerializeParams() const;

  /// Restores predict-time parameters from SerializeParams output on a
  /// freshly constructed model. InvalidArgument on malformed input (wrong
  /// token count, non-finite values, invalid sizes); after an OK restore
  /// PredictProba is usable without Fit.
  virtual Status RestoreParams(const std::string& params);

  /// Installs a time budget / cancellation token honored by subsequent
  /// Fit calls. Default is a no-op: closed-form models (majority vote)
  /// finish in one pass and have nothing meaningful to interrupt.
  virtual void set_limits(const RunLimits& limits) { (void)limits; }

  /// Probabilistic labels for every row of a matrix; first row error wins.
  Result<std::vector<std::vector<double>>> PredictProbaAll(
      const LabelMatrix& matrix) const;

  /// Hard labels for every row; kAbstain on rows with no active LF.
  Result<std::vector<int>> PredictAll(const LabelMatrix& matrix) const;
};

enum class LabelModelType {
  kMajorityVote,
  kDawidSkene,
  /// Robust MeTaL-style moments estimator (median over triplets).
  kMetal,
  /// Faithful MeTaL matrix-completion estimator (the paper's label model;
  /// fragile under dependent LFs like the original).
  kMetalCompletion,
  /// Original data-programming generative model (NeurIPS 2016 / Snorkel),
  /// trained by exact marginal-likelihood gradient ascent.
  kGenerative,
};

/// Factory for the configured label-model type.
std::unique_ptr<LabelModel> MakeLabelModel(LabelModelType type);

/// Factory keyed by LabelModel::name() ("majority-vote", "dawid-skene",
/// "metal", "metal-completion", "generative-dp") — the inverse of the
/// name persisted in a model snapshot. InvalidArgument on unknown names.
Result<std::unique_ptr<LabelModel>> MakeLabelModelByName(
    const std::string& name);

/// Parses "mv" / "ds" / "metal" / "metal-mc" (case-insensitive); defaults to
/// kMetalCompletion on unknown input.
LabelModelType ParseLabelModelType(const std::string& name);

}  // namespace activedp

#endif  // ACTIVEDP_LABELMODEL_LABEL_MODEL_H_
