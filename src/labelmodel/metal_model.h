#ifndef ACTIVEDP_LABELMODEL_METAL_MODEL_H_
#define ACTIVEDP_LABELMODEL_METAL_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "labelmodel/label_model.h"
#include "util/convergence.h"
#include "util/deadline.h"

namespace activedp {

struct MetalModelOptions {
  /// Minimum number of co-activations before a pairwise moment is trusted.
  int min_pair_count = 5;
  /// Maximum number of (j, k) triplet pairs sampled per LF.
  int max_triplets_per_lf = 64;
  /// Accuracy parameters are clamped into [-clamp, clamp].
  double accuracy_clamp = 0.95;
  uint64_t seed = 13;
  /// Checked between estimation phases and periodically inside the row
  /// scans; trips as DeadlineExceeded / Cancelled.
  RunLimits limits;
};

/// MeTaL-style method-of-moments label model for binary tasks (the role
/// MeTaL [24] plays in the paper, §4.1.3). LF outputs are mapped to
/// {-1,0,+1}; under conditional independence the pairwise moments satisfy
/// E[v_i v_j] = a_i a_j where a_i = E[v_i Y | v_i active] is LF i's
/// accuracy parameter, so |a_i| is recovered in closed form from triplets
/// (i,j,k) as sqrt(|M_ij M_ik / M_jk|) — the same moment system MeTaL's
/// matrix completion solves. Signs follow the better-than-random
/// assumption; LFs with insufficient co-activation fall back to
/// agreement-with-majority-vote estimates. All eight paper datasets are
/// binary; multiclass aggregation is available via DawidSkeneModel.
class MetalModel : public LabelModel {
 public:
  explicit MetalModel(MetalModelOptions options = {}) : options_(options) {}

  Status Fit(const LabelMatrix& matrix, int num_classes) override;
  Result<std::vector<double>> PredictProba(
      const std::vector<int>& weak_labels) const override;
  Result<std::vector<double>> PredictProbaSparse(
      const ActiveRowView& row, int num_cols) const override;
  std::string name() const override { return "metal"; }
  /// Params: `<num_lfs> <positive_prior> <a_0> .. <a_{m-1}>`.
  Result<std::string> SerializeParams() const override;
  Status RestoreParams(const std::string& params) override;
  void set_limits(const RunLimits& limits) override {
    options_.limits = limits;
  }

  /// Recovered accuracy parameter a_j in [-clamp, clamp]; the implied LF
  /// accuracy is (1 + a_j) / 2.
  double accuracy_param(int lf_index) const { return accuracies_[lf_index]; }
  double positive_prior() const { return positive_prior_; }

  /// Honest fit report (the estimator is closed-form, so `converged` is
  /// true whenever the recovered parameters are finite).
  const ConvergenceReport& report() const { return report_; }

 private:
  MetalModelOptions options_;
  std::vector<double> accuracies_;
  double positive_prior_ = 0.5;
  int num_lfs_ = 0;
  ConvergenceReport report_;
};

/// Shared text codec for the spin accuracy-parameter family (metal,
/// metal-completion): one line `<num_lfs> <prior> <a_0> .. <a_{m-1}>`,
/// doubles in round-tripping %.17g form.
std::string EncodeSpinAccuracyParams(int num_lfs, double positive_prior,
                                     const std::vector<double>& accuracies);
Status DecodeSpinAccuracyParams(const std::string& model_name,
                                const std::string& params, int* num_lfs,
                                double* positive_prior,
                                std::vector<double>* accuracies);

}  // namespace activedp

#endif  // ACTIVEDP_LABELMODEL_METAL_MODEL_H_
