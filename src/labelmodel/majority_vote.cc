#include "labelmodel/majority_vote.h"

#include <algorithm>

#include "util/check.h"
#include "util/string_util.h"

namespace activedp {

Status MajorityVoteModel::Fit(const LabelMatrix& matrix, int num_classes) {
  if (num_classes < 2) return Status::InvalidArgument("need >= 2 classes");
  if (matrix.num_cols() == 0)
    return Status::InvalidArgument("label matrix has no LF columns");
  num_classes_ = num_classes;
  // Estimate class priors from per-row majority votes (uniform fallback).
  // Row-driven off the CSR view: O(nnz) instead of O(n m).
  matrix.EnsureRows();
  std::vector<double> counts(num_classes, 1.0);  // Laplace smoothing
  std::vector<double> votes(num_classes, 0.0);
  for (int i = 0; i < matrix.num_rows(); ++i) {
    const ActiveRowView row = matrix.ActiveRow(i);
    if (row.nnz == 0) continue;
    std::fill(votes.begin(), votes.end(), 0.0);
    for (int k = 0; k < row.nnz; ++k) votes[row.labels[k]] += 1.0;
    int best = 0;
    for (int c = 1; c < num_classes; ++c) {
      if (votes[c] > votes[best]) best = c;
    }
    counts[best] += 1.0;
  }
  double total = 0.0;
  for (double c : counts) total += c;
  priors_.resize(num_classes);
  for (int c = 0; c < num_classes; ++c) priors_[c] = counts[c] / total;
  return Status::Ok();
}

Result<std::string> MajorityVoteModel::SerializeParams() const {
  if (num_classes_ <= 0)
    return Status::FailedPrecondition("Fit before SerializeParams");
  std::string out = std::to_string(num_classes_);
  for (double p : priors_) {
    out += ' ';
    out += FormatExactDouble(p);
  }
  return out;
}

Status MajorityVoteModel::RestoreParams(const std::string& params) {
  const std::vector<std::string> tokens = SplitWhitespace(params);
  int num_classes = 0;
  if (tokens.empty() || !ParseInt(tokens[0], &num_classes) ||
      num_classes < 2) {
    return Status::InvalidArgument("majority-vote params: bad class count");
  }
  if (static_cast<int>(tokens.size()) != 1 + num_classes) {
    return Status::InvalidArgument(
        "majority-vote params: expected " + std::to_string(1 + num_classes) +
        " tokens, got " + std::to_string(tokens.size()));
  }
  std::vector<double> priors(num_classes);
  for (int c = 0; c < num_classes; ++c) {
    if (!ParseDouble(tokens[1 + c], &priors[c]) || priors[c] < 0.0) {
      return Status::InvalidArgument("majority-vote params: bad prior '" +
                                     tokens[1 + c] + "'");
    }
  }
  num_classes_ = num_classes;
  priors_ = std::move(priors);
  return Status::Ok();
}

Result<std::vector<double>> MajorityVoteModel::PredictProba(
    const std::vector<int>& weak_labels) const {
  if (num_classes_ <= 0)
    return Status::FailedPrecondition("Fit before PredictProba");
  std::vector<double> votes(num_classes_, 0.0);
  int active = 0;
  for (int l : weak_labels) {
    if (l == kAbstain) continue;
    if (l < 0 || l >= num_classes_) {
      return Status::InvalidArgument("weak label " + std::to_string(l) +
                                     " outside [0, " +
                                     std::to_string(num_classes_) + ")");
    }
    votes[l] += 1.0;
    ++active;
  }
  if (active == 0) return priors_;
  // Blend with a weak prior so ties resolve toward the prior.
  std::vector<double> proba(num_classes_);
  double total = 0.0;
  for (int c = 0; c < num_classes_; ++c) {
    proba[c] = votes[c] + 0.1 * priors_[c];
    total += proba[c];
  }
  for (double& p : proba) p /= total;
  return proba;
}

Result<std::vector<double>> MajorityVoteModel::PredictProbaSparse(
    const ActiveRowView& row, int num_cols) const {
  (void)num_cols;  // votes depend only on the active entries
  if (num_classes_ <= 0)
    return Status::FailedPrecondition("Fit before PredictProba");
  std::vector<double> votes(num_classes_, 0.0);
  for (int k = 0; k < row.nnz; ++k) {
    const int l = row.labels[k];
    if (l < 0 || l >= num_classes_) {
      return Status::InvalidArgument("weak label " + std::to_string(l) +
                                     " outside [0, " +
                                     std::to_string(num_classes_) + ")");
    }
    votes[l] += 1.0;
  }
  if (row.nnz == 0) return priors_;
  std::vector<double> proba(num_classes_);
  double total = 0.0;
  for (int c = 0; c < num_classes_; ++c) {
    proba[c] = votes[c] + 0.1 * priors_[c];
    total += proba[c];
  }
  for (double& p : proba) p /= total;
  return proba;
}

}  // namespace activedp
