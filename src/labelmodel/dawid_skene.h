#ifndef ACTIVEDP_LABELMODEL_DAWID_SKENE_H_
#define ACTIVEDP_LABELMODEL_DAWID_SKENE_H_

#include <string>
#include <vector>

#include "labelmodel/label_model.h"
#include "math/matrix.h"

namespace activedp {

struct DawidSkeneOptions {
  /// EM is early-stopped by default (standard weak-supervision practice):
  /// the majority-vote initialization is close to the good solution, and on
  /// matrices with correlated LF activations long EM runs drift toward a
  /// latent factor other than the class.
  int max_iterations = 5;
  double tolerance = 1e-5;
  /// Pseudo-count added to every confusion-matrix cell.
  double smoothing = 0.5;
  /// Extra pseudo-count on the vote diagonal, encoding the better-than-
  /// random prior on LFs. Without it EM drifts to a degenerate optimum on
  /// weak-supervision matrices where most covered rows carry a single vote
  /// or LF activations are correlated (EM then tracks a latent factor other
  /// than the class); the diagonal anchor is the EM analogue of MeTaL's
  /// positive-accuracy sign assumption. The effective pseudo-count per LF is
  /// diagonal_prior + diagonal_prior_fraction * (its activation count), so
  /// the anchor keeps pace with the evidence.
  double diagonal_prior = 2.0;
  double diagonal_prior_fraction = 0.1;
  /// Model abstention as an explicit outcome, i.e. learn
  /// P(λ_j = abstain | Y = c). Weak-supervision LFs typically have class-
  /// conditional *activation* (a "spam"-keyword LF fires almost only on
  /// spam), so discarding abstains — the classic crowdsourcing assumption —
  /// throws away most of the signal of single-polarity LFs.
  bool model_abstentions = true;
  /// Checked once per EM iteration; trips as DeadlineExceeded / Cancelled
  /// with the iteration count reached (partial progress) in the message.
  RunLimits limits;
};

/// Generative aggregator in the Dawid & Skene (1979) family: each LF j has
/// a class-conditional outcome distribution π_j[c][l] over its votes (and,
/// by default, its abstentions); parameters and label posteriors are
/// estimated jointly with EM, initialized from majority vote.
/// Multiclass-capable.
class DawidSkeneModel : public LabelModel {
 public:
  explicit DawidSkeneModel(DawidSkeneOptions options = {})
      : options_(options) {}

  Status Fit(const LabelMatrix& matrix, int num_classes) override;

  /// Semi-supervised fit: posteriors of `labeled_rows` are clamped to their
  /// known `labeled_values` throughout EM, so expert labels steer the
  /// confusion-matrix estimates — the mechanism behind the Active WeaSuL
  /// baseline (Biegel et al. 2021), which uses a small labelled subset to
  /// guide label-model training.
  Status FitSemiSupervised(const LabelMatrix& matrix, int num_classes,
                           const std::vector<int>& labeled_rows,
                           const std::vector<int>& labeled_values);

  Result<std::vector<double>> PredictProba(
      const std::vector<int>& weak_labels) const override;
  std::string name() const override { return "dawid-skene"; }
  /// Params: `<C> <m> <abst 0|1> <priors C> <confusions m * C*(C+abst)>`
  /// (confusion rows row-major per LF). Restoring also sets the
  /// model_abstentions option so OutcomeIndex matches the fitted shape.
  Result<std::string> SerializeParams() const override;
  Status RestoreParams(const std::string& params) override;
  void set_limits(const RunLimits& limits) override {
    options_.limits = limits;
  }

  const std::vector<double>& class_priors() const { return priors_; }
  /// π_j as a num_classes x (num_classes [+1]) matrix; the trailing column
  /// is the abstain outcome when model_abstentions is on.
  const Matrix& confusion(int lf_index) const { return confusions_[lf_index]; }
  int iterations_run() const { return iterations_run_; }

 private:
  /// Outcome column for a weak label (votes map to themselves; abstain maps
  /// to the trailing column when modelled, or -1 for "skip").
  int OutcomeIndex(int weak_label) const;

  DawidSkeneOptions options_;
  int num_classes_ = 0;
  std::vector<double> priors_;
  std::vector<Matrix> confusions_;
  int iterations_run_ = 0;
};

}  // namespace activedp

#endif  // ACTIVEDP_LABELMODEL_DAWID_SKENE_H_
