#include "labelmodel/dawid_skene.h"

#include <cmath>

#include "math/vector_ops.h"
#include "util/string_util.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace activedp {

int DawidSkeneModel::OutcomeIndex(int weak_label) const {
  if (weak_label == kAbstain) {
    return options_.model_abstentions ? num_classes_ : -1;
  }
  return weak_label;
}

Status DawidSkeneModel::Fit(const LabelMatrix& matrix, int num_classes) {
  return FitSemiSupervised(matrix, num_classes, {}, {});
}

Status DawidSkeneModel::FitSemiSupervised(
    const LabelMatrix& matrix, int num_classes,
    const std::vector<int>& labeled_rows,
    const std::vector<int>& labeled_values) {
  if (num_classes < 2) return Status::InvalidArgument("need >= 2 classes");
  if (matrix.num_cols() == 0)
    return Status::InvalidArgument("label matrix has no LF columns");
  if (labeled_rows.size() != labeled_values.size())
    return Status::InvalidArgument("labeled rows/values size mismatch");
  num_classes_ = num_classes;
  const int n = matrix.num_rows();
  const int m = matrix.num_cols();

  // Anchor map: row -> known label.
  std::vector<int> anchor(n, -1);
  for (size_t i = 0; i < labeled_rows.size(); ++i) {
    if (labeled_rows[i] < 0 || labeled_rows[i] >= n)
      return Status::OutOfRange("labeled row out of range");
    if (labeled_values[i] < 0 || labeled_values[i] >= num_classes)
      return Status::InvalidArgument("labeled value out of range");
    anchor[labeled_rows[i]] = labeled_values[i];
  }
  const int outcomes =
      options_.model_abstentions ? num_classes + 1 : num_classes;

  // Initialize posteriors from (soft) majority vote; anchored rows are
  // pinned to their known label.
  std::vector<std::vector<double>> q(n,
                                     std::vector<double>(num_classes, 0.0));
  for (int i = 0; i < n; ++i) {
    if (anchor[i] >= 0) {
      q[i][anchor[i]] = 1.0;
      continue;
    }
    double active = 0.0;
    for (int j = 0; j < m; ++j) {
      const int l = matrix.At(i, j);
      if (l == kAbstain) continue;
      q[i][l] += 1.0;
      active += 1.0;
    }
    if (active > 0.0) {
      for (double& p : q[i]) p /= active;
    } else {
      for (double& p : q[i]) p = 1.0 / num_classes;
    }
  }

  TraceSpan span("dawid_skene.fit");
  span.AddArg("rows", n);
  span.AddArg("lfs", m);

  priors_.assign(num_classes, 1.0 / num_classes);
  confusions_.assign(m, Matrix(num_classes, outcomes));
  double prev_loglik = -1e300;

  for (iterations_run_ = 0; iterations_run_ < options_.max_iterations;
       ++iterations_run_) {
    const Status limit = options_.limits.Check("dawid_skene.fit");
    if (!limit.ok()) {
      return Status(limit.code(),
                    "dawid-skene: " + limit.message() + " after " +
                        std::to_string(iterations_run_) + " of " +
                        std::to_string(options_.max_iterations) +
                        " EM iterations");
    }
    // M-step: priors and outcome distributions from current posteriors.
    std::vector<double> prior_counts(num_classes, options_.smoothing);
    for (int i = 0; i < n; ++i) {
      for (int c = 0; c < num_classes; ++c) prior_counts[c] += q[i][c];
    }
    const double prior_total = Sum(prior_counts);
    for (int c = 0; c < num_classes; ++c) {
      priors_[c] = prior_counts[c] / prior_total;
    }
    for (int j = 0; j < m; ++j) {
      int activations = 0;
      for (int i = 0; i < n; ++i) {
        if (matrix.At(i, j) != kAbstain) ++activations;
      }
      const double anchor =
          options_.diagonal_prior +
          options_.diagonal_prior_fraction * activations;
      Matrix counts(num_classes, outcomes, options_.smoothing);
      for (int c = 0; c < num_classes; ++c) {
        counts(c, c) += anchor;
      }
      for (int i = 0; i < n; ++i) {
        const int l = OutcomeIndex(matrix.At(i, j));
        if (l < 0) continue;
        for (int c = 0; c < num_classes; ++c) counts(c, l) += q[i][c];
      }
      for (int c = 0; c < num_classes; ++c) {
        double row_total = 0.0;
        for (int l = 0; l < outcomes; ++l) row_total += counts(c, l);
        for (int l = 0; l < outcomes; ++l) {
          confusions_[j](c, l) = counts(c, l) / row_total;
        }
      }
    }

    // E-step: posteriors from parameters; track the data log-likelihood.
    double loglik = 0.0;
    std::vector<double> log_post(num_classes);
    for (int i = 0; i < n; ++i) {
      for (int c = 0; c < num_classes; ++c) {
        log_post[c] = std::log(priors_[c]);
      }
      for (int j = 0; j < m; ++j) {
        const int l = OutcomeIndex(matrix.At(i, j));
        if (l < 0) continue;
        for (int c = 0; c < num_classes; ++c) {
          log_post[c] += std::log(confusions_[j](c, l));
        }
      }
      const double lse = LogSumExp(log_post);
      loglik += lse;
      if (anchor[i] >= 0) continue;  // clamped posterior
      for (int c = 0; c < num_classes; ++c) {
        q[i][c] = std::exp(log_post[c] - lse);
      }
    }
    if (std::fabs(loglik - prev_loglik) <
        options_.tolerance * (std::fabs(loglik) + 1.0)) {
      break;
    }
    prev_loglik = loglik;
  }
  MetricsRegistry::Global()
      .counter("dawid_skene.em_iterations")
      .Increment(iterations_run_);
  span.AddArg("em_iterations", iterations_run_);
  if (iterations_run_ >= options_.max_iterations) {
    TraceInstant("convergence", "dawid_skene.fit",
                 "EM hit max_iterations (" +
                     std::to_string(options_.max_iterations) + ")");
  }
  return Status::Ok();
}

Result<std::string> DawidSkeneModel::SerializeParams() const {
  if (num_classes_ <= 0)
    return Status::FailedPrecondition("Fit before SerializeParams");
  const int outcomes = num_classes_ + (options_.model_abstentions ? 1 : 0);
  std::string out = std::to_string(num_classes_);
  out += ' ';
  out += std::to_string(confusions_.size());
  out += ' ';
  out += options_.model_abstentions ? '1' : '0';
  for (double p : priors_) {
    out += ' ';
    out += FormatExactDouble(p);
  }
  for (const Matrix& confusion : confusions_) {
    for (int c = 0; c < num_classes_; ++c) {
      for (int l = 0; l < outcomes; ++l) {
        out += ' ';
        out += FormatExactDouble(confusion(c, l));
      }
    }
  }
  return out;
}

Status DawidSkeneModel::RestoreParams(const std::string& params) {
  const std::vector<std::string> tokens = SplitWhitespace(params);
  int num_classes = 0;
  int m = 0;
  int abst = 0;
  if (tokens.size() < 3 || !ParseInt(tokens[0], &num_classes) ||
      num_classes < 2 || !ParseInt(tokens[1], &m) || m <= 0 ||
      !ParseInt(tokens[2], &abst) || (abst != 0 && abst != 1)) {
    return Status::InvalidArgument("dawid-skene params: bad header");
  }
  const int outcomes = num_classes + abst;
  const size_t expected = 3 + static_cast<size_t>(num_classes) +
                          static_cast<size_t>(m) * num_classes * outcomes;
  if (tokens.size() != expected) {
    return Status::InvalidArgument(
        "dawid-skene params: expected " + std::to_string(expected) +
        " tokens, got " + std::to_string(tokens.size()));
  }
  size_t pos = 3;
  std::vector<double> priors(num_classes);
  for (int c = 0; c < num_classes; ++c) {
    if (!ParseDouble(tokens[pos], &priors[c]) || priors[c] < 0.0) {
      return Status::InvalidArgument("dawid-skene params: bad prior '" +
                                     tokens[pos] + "'");
    }
    ++pos;
  }
  std::vector<Matrix> confusions(m, Matrix(num_classes, outcomes));
  for (int j = 0; j < m; ++j) {
    for (int c = 0; c < num_classes; ++c) {
      for (int l = 0; l < outcomes; ++l) {
        double cell = 0.0;
        if (!ParseDouble(tokens[pos], &cell) || cell < 0.0) {
          return Status::InvalidArgument(
              "dawid-skene params: bad confusion cell '" + tokens[pos] + "'");
        }
        confusions[j](c, l) = cell;
        ++pos;
      }
    }
  }
  num_classes_ = num_classes;
  priors_ = std::move(priors);
  confusions_ = std::move(confusions);
  options_.model_abstentions = (abst == 1);
  return Status::Ok();
}

Result<std::vector<double>> DawidSkeneModel::PredictProba(
    const std::vector<int>& weak_labels) const {
  if (num_classes_ <= 0)
    return Status::FailedPrecondition("Fit before PredictProba");
  if (weak_labels.size() != confusions_.size()) {
    return Status::InvalidArgument(
        "weak-label row has " + std::to_string(weak_labels.size()) +
        " entries, model was fit on " + std::to_string(confusions_.size()) +
        " LFs");
  }
  std::vector<double> log_post(num_classes_);
  for (int c = 0; c < num_classes_; ++c) log_post[c] = std::log(priors_[c]);
  for (size_t j = 0; j < weak_labels.size(); ++j) {
    const int l = OutcomeIndex(weak_labels[j]);
    if (l < 0) continue;
    for (int c = 0; c < num_classes_; ++c) {
      log_post[c] += std::log(confusions_[j](c, l));
    }
  }
  return Softmax(log_post);
}

}  // namespace activedp
