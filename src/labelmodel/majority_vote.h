#ifndef ACTIVEDP_LABELMODEL_MAJORITY_VOTE_H_
#define ACTIVEDP_LABELMODEL_MAJORITY_VOTE_H_

#include <string>
#include <vector>

#include "labelmodel/label_model.h"

namespace activedp {

/// Baseline label model: each active LF casts one vote; the probabilistic
/// label is the normalized vote histogram blended with a weak prior.
class MajorityVoteModel : public LabelModel {
 public:
  Status Fit(const LabelMatrix& matrix, int num_classes) override;
  Result<std::vector<double>> PredictProba(
      const std::vector<int>& weak_labels) const override;
  Result<std::vector<double>> PredictProbaSparse(
      const ActiveRowView& row, int num_cols) const override;
  std::string name() const override { return "majority-vote"; }
  /// Params: `<num_classes> <prior_0> .. <prior_{C-1}>`.
  Result<std::string> SerializeParams() const override;
  Status RestoreParams(const std::string& params) override;

  const std::vector<double>& class_priors() const { return priors_; }

 private:
  int num_classes_ = 0;
  std::vector<double> priors_;
};

}  // namespace activedp

#endif  // ACTIVEDP_LABELMODEL_MAJORITY_VOTE_H_
