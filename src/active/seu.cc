#include "active/seu.h"

#include <algorithm>

#include "util/check.h"

namespace activedp {
namespace {

constexpr double kCoveredRowWeight = 0.3;

}  // namespace

void SeuSampler::EnsureIndex(const SamplerContext& context) {
  if (indexed_dataset_ == context.train) return;
  indexed_dataset_ = context.train;
  token_rows_.clear();
  if (context.train->meta().task != TaskType::kTextClassification) return;
  token_rows_.resize(context.train->vocabulary().size());
  for (int i = 0; i < context.train->size(); ++i) {
    for (const auto& [term, count] : context.train->example(i).term_counts) {
      if (term >= 0 && term < static_cast<int>(token_rows_.size())) {
        token_rows_[term].push_back(i);
      }
    }
  }
}

double SeuSampler::Utility(
    const LabelFunction& lf, const SamplerContext& context,
    std::unordered_map<std::string, double>& cache) const {
  const std::string key = lf.Key();
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  auto row_utility = [&](int row) {
    // Expected net-correct weak label under current beliefs; rows without
    // beliefs (no label model yet) contribute the uncovered bonus only.
    double p_correct = 0.5;
    if (context.lm_proba != nullptr) {
      p_correct = (*context.lm_proba)[row][lf.label()];
    }
    const bool covered =
        context.lm_active != nullptr && (*context.lm_active)[row];
    const double weight = covered ? kCoveredRowWeight : 1.0;
    return weight * (2.0 * p_correct - 1.0);
  };

  double utility = 0.0;
  const auto* keyword = dynamic_cast<const KeywordLf*>(&lf);
  if (keyword != nullptr && !token_rows_.empty()) {
    const int term = keyword->token_id();
    if (term >= 0 && term < static_cast<int>(token_rows_.size())) {
      for (int row : token_rows_[term]) utility += row_utility(row);
    }
  } else {
    for (int row = 0; row < context.train->size(); ++row) {
      if (lf.Apply(context.train->example(row)) == kAbstain) continue;
      utility += row_utility(row);
    }
  }
  cache.emplace(key, utility);
  return utility;
}

int SeuSampler::SelectQuery(const SamplerContext& context, Rng& rng) {
  CHECK(context.lf_space != nullptr) << "SEU requires the candidate LF space";
  EnsureIndex(context);

  // Candidate query pool.
  std::vector<int> unqueried;
  for (int i = 0; i < context.train->size(); ++i) {
    if (!(*context.queried)[i]) unqueried.push_back(i);
  }
  if (unqueried.empty()) return -1;
  std::vector<int> pool;
  if (static_cast<int>(unqueried.size()) <= options_.pool_subsample) {
    pool = unqueried;
  } else {
    for (int idx :
         rng.SampleWithoutReplacement(static_cast<int>(unqueried.size()),
                                      options_.pool_subsample)) {
      pool.push_back(unqueried[idx]);
    }
  }

  std::unordered_map<std::string, double> utility_cache;
  int best = pool.front();
  double best_score = -1e300;
  for (int i : pool) {
    // All LFs anchored at the instance, system view (no accuracy filter).
    std::vector<LfCandidate> candidates = context.lf_space->CandidatesFor(
        context.train->example(i), /*min_accuracy=*/-1.0,
        /*target_label=*/-1);
    if (candidates.empty()) continue;
    // Keep the highest-coverage candidates (the ones a user most plausibly
    // returns) to bound the cost.
    if (static_cast<int>(candidates.size()) >
        options_.max_candidates_per_instance) {
      std::partial_sort(
          candidates.begin(),
          candidates.begin() + options_.max_candidates_per_instance,
          candidates.end(), [](const LfCandidate& a, const LfCandidate& b) {
            return a.coverage > b.coverage;
          });
      candidates.resize(options_.max_candidates_per_instance);
    }
    double coverage_total = 0.0;
    for (const auto& c : candidates) coverage_total += c.coverage;
    if (coverage_total <= 0.0) continue;
    double score = 0.0;
    for (const auto& c : candidates) {
      const double p_user = c.coverage / coverage_total;
      score += p_user * Utility(*c.lf, context, utility_cache);
    }
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

}  // namespace activedp
