#ifndef ACTIVEDP_ACTIVE_QBC_H_
#define ACTIVEDP_ACTIVE_QBC_H_

#include <string>

#include "active/sampler.h"

namespace activedp {

struct QbcOptions {
  /// Committee size.
  int committee = 5;
  /// Candidates scored per query (bounds the committee-prediction cost).
  int pool_subsample = 128;
  /// Minimum labelled instances before a committee can be trained.
  int min_labeled = 6;
};

/// Query-by-committee (Seung, Opper & Sompolinsky 1992; surveyed in §2.2):
/// trains a committee of logistic regressions on bootstrap resamples of the
/// pseudo-labelled set and queries the instance with the highest vote
/// entropy (maximum committee disagreement). Falls back to random selection
/// before enough labelled data exists.
class QbcSampler : public Sampler {
 public:
  explicit QbcSampler(QbcOptions options = {}) : options_(options) {}

  std::string name() const override { return "qbc"; }
  int SelectQuery(const SamplerContext& context, Rng& rng) override;

 private:
  QbcOptions options_;
};

}  // namespace activedp

#endif  // ACTIVEDP_ACTIVE_QBC_H_
