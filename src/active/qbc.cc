#include "active/qbc.h"

#include <vector>

#include "math/vector_ops.h"
#include "ml/linear_model.h"
#include "util/check.h"

namespace activedp {
namespace {

bool HasTwoClasses(const std::vector<int>& labels) {
  for (size_t i = 1; i < labels.size(); ++i) {
    if (labels[i] != labels[0]) return true;
  }
  return false;
}

}  // namespace

int QbcSampler::SelectQuery(const SamplerContext& context, Rng& rng) {
  const bool has_labels =
      context.labeled_rows != nullptr && context.labeled_values != nullptr &&
      static_cast<int>(context.labeled_rows->size()) >= options_.min_labeled;
  if (!has_labels || context.features == nullptr ||
      context.feature_dim <= 0 || !HasTwoClasses(*context.labeled_values)) {
    return internal::RandomUnqueried(context, rng);
  }
  const auto& rows = *context.labeled_rows;
  const auto& values = *context.labeled_values;
  const int num_classes = context.train->meta().num_classes;
  const int t = static_cast<int>(rows.size());

  // Bootstrap committee of logistic regressions.
  std::vector<LogisticRegression> committee;
  committee.reserve(options_.committee);
  for (int k = 0; k < options_.committee; ++k) {
    std::vector<SparseVector> x;
    std::vector<int> y;
    x.reserve(t);
    y.reserve(t);
    for (int i = 0; i < t; ++i) {
      const int pick = rng.UniformInt(t);
      x.push_back((*context.features)[rows[pick]]);
      y.push_back(values[pick]);
    }
    if (!HasTwoClasses(y)) continue;  // degenerate bootstrap; skip member
    LogisticRegressionOptions lr;
    lr.epochs = 20;
    lr.seed = rng.Next();
    Result<LogisticRegression> model = LogisticRegression::FitHard(
        x, y, num_classes, context.feature_dim, lr);
    if (model.ok()) committee.push_back(std::move(*model));
  }
  if (committee.size() < 2) return internal::RandomUnqueried(context, rng);

  // Candidate pool.
  std::vector<int> unqueried;
  for (int i = 0; i < context.train->size(); ++i) {
    if (!(*context.queried)[i]) unqueried.push_back(i);
  }
  if (unqueried.empty()) return -1;
  std::vector<int> pool;
  if (static_cast<int>(unqueried.size()) <= options_.pool_subsample) {
    pool = unqueried;
  } else {
    for (int idx :
         rng.SampleWithoutReplacement(static_cast<int>(unqueried.size()),
                                      options_.pool_subsample)) {
      pool.push_back(unqueried[idx]);
    }
  }

  // Maximum vote entropy = maximum committee disagreement.
  int best = pool.front();
  double best_disagreement = -1.0;
  std::vector<double> votes(num_classes);
  for (int i : pool) {
    std::fill(votes.begin(), votes.end(), 0.0);
    for (const auto& member : committee) {
      votes[member.Predict((*context.features)[i])] += 1.0;
    }
    for (double& v : votes) v /= committee.size();
    const double disagreement = Entropy(votes);
    if (disagreement > best_disagreement) {
      best_disagreement = disagreement;
      best = i;
    }
  }
  return best;
}

}  // namespace activedp
