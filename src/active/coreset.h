#ifndef ACTIVEDP_ACTIVE_CORESET_H_
#define ACTIVEDP_ACTIVE_CORESET_H_

#include <string>
#include <vector>

#include "active/sampler.h"

namespace activedp {

/// Core-set selection (Sener & Savarese 2018; surveyed in §2.2): greedy
/// k-center in feature space — query the instance farthest (Euclidean) from
/// every already-queried instance, maximizing diversity of the labelled
/// set. The per-point minimum distance to the queried set is maintained
/// incrementally, so each query costs one pass over the pool.
class CoresetSampler : public Sampler {
 public:
  std::string name() const override { return "coreset"; }
  int SelectQuery(const SamplerContext& context, Rng& rng) override;

 private:
  void EnsureState(const SamplerContext& context);

  const Dataset* initialized_for_ = nullptr;
  /// Squared norm of each training row's feature vector.
  std::vector<double> norms_;
  /// Min squared distance from each row to the queried set.
  std::vector<double> min_distance_;
  /// Number of queried rows already folded into min_distance_.
  int last_query_ = -1;
};

}  // namespace activedp

#endif  // ACTIVEDP_ACTIVE_CORESET_H_
