#ifndef ACTIVEDP_ACTIVE_SAMPLER_H_
#define ACTIVEDP_ACTIVE_SAMPLER_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/example.h"
#include "lf/lf_candidates.h"
#include "util/rng.h"

namespace activedp {

/// Snapshot of the interactive state a sampler may consult when choosing the
/// next query instance. Pointers may be null early in a run (e.g. before the
/// first LF exists or the first AL model is trained); samplers must degrade
/// gracefully (typically to random selection).
struct SamplerContext {
  const Dataset* train = nullptr;
  /// Featurized training set (aligned with train) and its dimension.
  const std::vector<SparseVector>* features = nullptr;
  int feature_dim = 0;
  /// Active-learning model probabilities per training row, or null.
  const std::vector<std::vector<double>>* al_proba = nullptr;
  /// Label-model probabilities per training row (prior on uncovered rows),
  /// or null when no LF exists yet.
  const std::vector<std::vector<double>>* lm_proba = nullptr;
  /// Whether at least one selected LF fires on each row (aligned with
  /// lm_proba), or null.
  const std::vector<bool>* lm_active = nullptr;
  /// Rows already queried in earlier iterations (never re-query).
  const std::vector<bool>* queried = nullptr;
  /// Size of the pseudo-labelled set so far.
  int num_labeled = 0;
  /// Fraction of the pseudo-labelled set carrying class 1 (LAL state
  /// feature; 0.5 when nothing is labelled).
  double labeled_positive_fraction = 0.5;
  /// The pseudo-labelled set itself (row indices into train and their
  /// labels), or null. Needed by committee-based samplers.
  const std::vector<int>* labeled_rows = nullptr;
  const std::vector<int>* labeled_values = nullptr;
  /// Candidate-LF space (needed by SEU), or null.
  const LfSpace* lf_space = nullptr;
  /// ADP trade-off factor α of Eq. 2 (0.5 text, 0.99 tabular in §3.3).
  double adp_alpha = 0.5;
};

/// Query-instance selection strategy (§3.3 / §4.3.2).
class Sampler {
 public:
  virtual ~Sampler() = default;
  virtual std::string name() const = 0;
  /// Index of the next query in [0, train->size()), or -1 when every
  /// instance has been queried.
  virtual int SelectQuery(const SamplerContext& context, Rng& rng) = 0;
};

/// kQbc and kCoreset are extensions beyond the paper's Table 4 line-up,
/// implementing the query-by-committee [31] and core-set [27] strategies
/// its related-work section surveys.
enum class SamplerType {
  kPassive,
  kUncertainty,
  kLal,
  kSeu,
  kAdp,
  kQbc,
  kCoreset,
};

/// Factory. LAL performs its offline meta-training at construction.
std::unique_ptr<Sampler> MakeSampler(SamplerType type, uint64_t seed = 29);

/// Parses "passive" / "us" / "lal" / "seu" / "adp" / "qbc" / "coreset";
/// defaults to kAdp.
SamplerType ParseSamplerType(const std::string& name);

namespace internal {
/// Uniformly random unqueried index, or -1 if none. Shared fallback.
int RandomUnqueried(const SamplerContext& context, Rng& rng);
}  // namespace internal

}  // namespace activedp

#endif  // ACTIVEDP_ACTIVE_SAMPLER_H_
