#include "active/coreset.h"

#include <limits>

#include "data/example.h"
#include "util/check.h"

namespace activedp {
namespace {

double SquaredDistance(const SparseVector& a, const SparseVector& b,
                       double norm_a, double norm_b) {
  // ||a - b||^2 = ||a||^2 + ||b||^2 - 2 <a, b> with a sparse-sparse dot.
  double dot = 0.0;
  size_t i = 0, j = 0;
  while (i < a.indices.size() && j < b.indices.size()) {
    if (a.indices[i] == b.indices[j]) {
      dot += a.values[i] * b.values[j];
      ++i;
      ++j;
    } else if (a.indices[i] < b.indices[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return norm_a + norm_b - 2.0 * dot;
}

double SquaredNorm(const SparseVector& v) {
  double sum = 0.0;
  for (double value : v.values) sum += value * value;
  return sum;
}

}  // namespace

void CoresetSampler::EnsureState(const SamplerContext& context) {
  if (initialized_for_ == context.train) return;
  initialized_for_ = context.train;
  const auto& features = *context.features;
  norms_.resize(features.size());
  for (size_t i = 0; i < features.size(); ++i) {
    norms_[i] = SquaredNorm(features[i]);
  }
  min_distance_.assign(features.size(),
                       std::numeric_limits<double>::infinity());
  last_query_ = -1;
}

int CoresetSampler::SelectQuery(const SamplerContext& context, Rng& rng) {
  CHECK(context.features != nullptr);
  EnsureState(context);
  const auto& features = *context.features;
  const auto& queried = *context.queried;

  // Fold the previous query into the min-distance table.
  if (last_query_ >= 0) {
    for (size_t i = 0; i < features.size(); ++i) {
      if (queried[i]) continue;
      const double d = SquaredDistance(features[i], features[last_query_],
                                       norms_[i], norms_[last_query_]);
      if (d < min_distance_[i]) min_distance_[i] = d;
    }
  }

  int best = -1;
  double best_distance = -1.0;
  bool any_covered = last_query_ >= 0;
  for (size_t i = 0; i < features.size(); ++i) {
    if (queried[i]) continue;
    if (!any_covered) {
      // First query: no centers yet, pick at random.
      best = internal::RandomUnqueried(context, rng);
      break;
    }
    if (min_distance_[i] > best_distance) {
      best_distance = min_distance_[i];
      best = static_cast<int>(i);
    }
  }
  last_query_ = best;
  return best;
}

}  // namespace activedp
