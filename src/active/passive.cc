#include "active/passive.h"

namespace activedp {

int PassiveSampler::SelectQuery(const SamplerContext& context, Rng& rng) {
  return internal::RandomUnqueried(context, rng);
}

}  // namespace activedp
