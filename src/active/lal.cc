#include "active/lal.h"

#include <algorithm>
#include <cmath>

#include "math/vector_ops.h"
#include "ml/linear_model.h"
#include "util/logging.h"

namespace activedp {
namespace {

/// Dense 2-D point as a sparse vector.
SparseVector Point2d(double a, double b) {
  SparseVector v;
  v.PushBack(0, a);
  v.PushBack(1, b);
  return v;
}

struct SyntheticTask {
  std::vector<SparseVector> train_x;
  std::vector<int> train_y;
  std::vector<SparseVector> test_x;
  std::vector<int> test_y;
};

/// Two-Gaussian binary task with random separation, as in the LAL paper's
/// synthetic meta-training distribution.
SyntheticTask MakeTask(int size, Rng& rng) {
  SyntheticTask task;
  const double sep = rng.Uniform(0.8, 2.5);
  const double angle = rng.Uniform(0.0, 2.0 * 3.14159265358979);
  const double dx = std::cos(angle) * sep / 2.0;
  const double dy = std::sin(angle) * sep / 2.0;
  auto sample = [&](std::vector<SparseVector>& xs, std::vector<int>& ys) {
    for (int i = 0; i < size; ++i) {
      const int y = rng.Bernoulli(0.5) ? 1 : 0;
      const double sign = y == 1 ? 1.0 : -1.0;
      xs.push_back(
          Point2d(rng.Normal(sign * dx, 1.0), rng.Normal(sign * dy, 1.0)));
      ys.push_back(y);
    }
  };
  sample(task.train_x, task.train_y);
  sample(task.test_x, task.test_y);
  return task;
}

double TestError(const LogisticRegression& model,
                 const std::vector<SparseVector>& xs,
                 const std::vector<int>& ys) {
  int wrong = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (model.Predict(xs[i]) != ys[i]) ++wrong;
  }
  return static_cast<double>(wrong) / xs.size();
}

LogisticRegressionOptions FastLrOptions(uint64_t seed) {
  LogisticRegressionOptions options;
  options.epochs = 25;
  options.batch_size = 16;
  options.seed = seed;
  return options;
}

}  // namespace

std::vector<double> LalSampler::StateFeatures(
    const std::vector<double>& candidate_proba, double frac_labeled,
    double labeled_positive_fraction, double mean_unlabeled_pmax,
    double var_unlabeled_pmax) {
  const double p_max = Max(candidate_proba);
  double margin = p_max;
  if (candidate_proba.size() >= 2) {
    std::vector<double> sorted = candidate_proba;
    std::sort(sorted.begin(), sorted.end(), std::greater<double>());
    margin = sorted[0] - sorted[1];
  }
  return {p_max,
          Entropy(candidate_proba),
          margin,
          frac_labeled,
          labeled_positive_fraction,
          mean_unlabeled_pmax,
          var_unlabeled_pmax};
}

LalSampler::LalSampler(LalOptions options) : options_(options) { MetaTrain(); }

void LalSampler::MetaTrain() {
  Rng rng(options_.seed);
  std::vector<std::vector<double>> features;
  std::vector<double> gains;

  for (int ep = 0; ep < options_.episodes; ++ep) {
    SyntheticTask task = MakeTask(options_.task_size, rng);
    const int n = static_cast<int>(task.train_x.size());
    std::vector<int> labeled;
    std::vector<bool> is_labeled(n, false);
    // Seed with one example per class.
    for (int target = 0; target < 2; ++target) {
      for (int i = 0; i < n; ++i) {
        if (task.train_y[i] == target && !is_labeled[i]) {
          labeled.push_back(i);
          is_labeled[i] = true;
          break;
        }
      }
    }

    auto fit_on_labeled = [&]() -> Result<LogisticRegression> {
      std::vector<SparseVector> xs;
      std::vector<int> ys;
      for (int i : labeled) {
        xs.push_back(task.train_x[i]);
        ys.push_back(task.train_y[i]);
      }
      return LogisticRegression::FitHard(xs, ys, 2, 2,
                                         FastLrOptions(rng.Next()));
    };

    Result<LogisticRegression> model = fit_on_labeled();
    if (!model.ok()) continue;
    double error = TestError(*model, task.test_x, task.test_y);

    for (int step = 0; step < options_.steps_per_episode; ++step) {
      // Unlabeled statistics for the state features.
      std::vector<double> pmaxes;
      for (int i = 0; i < n; ++i) {
        if (!is_labeled[i]) pmaxes.push_back(Max(model->PredictProba(task.train_x[i])));
      }
      if (pmaxes.empty()) break;
      const double mean_pmax = Mean(pmaxes);
      const double var_pmax = Variance(pmaxes);
      double positive = 0.0;
      for (int i : labeled) positive += task.train_y[i];
      const double balance = positive / labeled.size();

      // Random candidate (the LAL-independent strategy).
      int candidate = -1;
      int tries = 0;
      do {
        candidate = rng.UniformInt(n);
      } while (is_labeled[candidate] && ++tries < 100);
      if (is_labeled[candidate]) break;

      const std::vector<double> phi = StateFeatures(
          model->PredictProba(task.train_x[candidate]),
          static_cast<double>(labeled.size()) / n, balance, mean_pmax,
          var_pmax);

      labeled.push_back(candidate);
      is_labeled[candidate] = true;
      model = fit_on_labeled();
      if (!model.ok()) break;
      const double new_error = TestError(*model, task.test_x, task.test_y);
      features.push_back(phi);
      gains.push_back(error - new_error);
      error = new_error;
    }
  }

  if (features.size() < 20) {
    LOG(Warning) << "LAL meta-training collected only " << features.size()
                 << " samples; sampler falls back to random selection";
    return;
  }
  RandomForestOptions forest_options;
  forest_options.num_trees = 40;
  forest_options.tree.max_depth = 7;
  Result<RandomForestRegressor> forest =
      RandomForestRegressor::Fit(features, gains, forest_options, rng);
  if (forest.ok()) {
    forest_ = std::move(*forest);
    trained_ = true;
  } else {
    LOG(Warning) << "LAL forest training failed: "
                 << forest.status().ToString();
  }
}

int LalSampler::SelectQuery(const SamplerContext& context, Rng& rng) {
  if (!trained_ || context.al_proba == nullptr) {
    return internal::RandomUnqueried(context, rng);
  }
  const auto& proba = *context.al_proba;
  const auto& queried = *context.queried;
  const int n = context.train->size();

  std::vector<double> pmaxes;
  std::vector<int> unqueried;
  for (int i = 0; i < n; ++i) {
    if (queried[i]) continue;
    unqueried.push_back(i);
    pmaxes.push_back(Max(proba[i]));
  }
  if (unqueried.empty()) return -1;
  const double mean_pmax = Mean(pmaxes);
  const double var_pmax = Variance(pmaxes);
  const double frac_labeled = static_cast<double>(context.num_labeled) / n;

  // Score a random pool (or everything if small).
  std::vector<int> pool;
  if (static_cast<int>(unqueried.size()) <= options_.pool_subsample) {
    pool = unqueried;
  } else {
    for (int idx :
         rng.SampleWithoutReplacement(static_cast<int>(unqueried.size()),
                                      options_.pool_subsample)) {
      pool.push_back(unqueried[idx]);
    }
  }
  int best = -1;
  double best_gain = -1e300;
  for (int i : pool) {
    const std::vector<double> phi =
        StateFeatures(proba[i], frac_labeled,
                      context.labeled_positive_fraction, mean_pmax, var_pmax);
    const double gain = forest_.Predict(phi);
    if (gain > best_gain) {
      best_gain = gain;
      best = i;
    }
  }
  return best;
}

}  // namespace activedp
