#include "active/uncertainty.h"

#include "math/vector_ops.h"

namespace activedp {

int UncertaintySampler::SelectQuery(const SamplerContext& context, Rng& rng) {
  if (context.al_proba == nullptr) {
    return internal::RandomUnqueried(context, rng);
  }
  const auto& proba = *context.al_proba;
  const auto& queried = *context.queried;
  int best = -1;
  double best_score = -1.0;
  for (size_t i = 0; i < proba.size(); ++i) {
    if (queried[i]) continue;
    const double score = Entropy(proba[i]);
    if (score > best_score) {
      best_score = score;
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace activedp
