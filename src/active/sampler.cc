#include "active/sampler.h"

#include "active/adp.h"
#include "active/coreset.h"
#include "active/lal.h"
#include "active/passive.h"
#include "active/qbc.h"
#include "active/seu.h"
#include "active/uncertainty.h"
#include "util/check.h"
#include "util/string_util.h"

namespace activedp {
namespace internal {

int RandomUnqueried(const SamplerContext& context, Rng& rng) {
  CHECK(context.train != nullptr);
  CHECK(context.queried != nullptr);
  std::vector<int> unqueried;
  for (int i = 0; i < context.train->size(); ++i) {
    if (!(*context.queried)[i]) unqueried.push_back(i);
  }
  if (unqueried.empty()) return -1;
  return unqueried[rng.UniformInt(static_cast<int>(unqueried.size()))];
}

}  // namespace internal

std::unique_ptr<Sampler> MakeSampler(SamplerType type, uint64_t seed) {
  switch (type) {
    case SamplerType::kPassive:
      return std::make_unique<PassiveSampler>();
    case SamplerType::kUncertainty:
      return std::make_unique<UncertaintySampler>();
    case SamplerType::kLal: {
      LalOptions options;
      options.seed = seed;
      return std::make_unique<LalSampler>(options);
    }
    case SamplerType::kSeu:
      return std::make_unique<SeuSampler>();
    case SamplerType::kAdp:
      return std::make_unique<AdpSampler>();
    case SamplerType::kQbc:
      return std::make_unique<QbcSampler>();
    case SamplerType::kCoreset:
      return std::make_unique<CoresetSampler>();
  }
  return std::make_unique<AdpSampler>();
}

SamplerType ParseSamplerType(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "passive" || lower == "random") return SamplerType::kPassive;
  if (lower == "us" || lower == "uncertainty") return SamplerType::kUncertainty;
  if (lower == "lal") return SamplerType::kLal;
  if (lower == "seu") return SamplerType::kSeu;
  if (lower == "qbc") return SamplerType::kQbc;
  if (lower == "coreset") return SamplerType::kCoreset;
  return SamplerType::kAdp;
}

}  // namespace activedp
