#ifndef ACTIVEDP_ACTIVE_ADP_H_
#define ACTIVEDP_ACTIVE_ADP_H_

#include <string>

#include "active/sampler.h"

namespace activedp {

/// The paper's ADP sampler (Eq. 2, §3.3): selects
///   argmax_x Ent(f_a(x))^alpha * Ent(f_l(x))^(1-alpha),
/// balancing uncertainty of the active-learning model against uncertainty of
/// the label model. When only one model exists its entropy alone is used;
/// before either exists, selection is random.
class AdpSampler : public Sampler {
 public:
  std::string name() const override { return "adp"; }
  int SelectQuery(const SamplerContext& context, Rng& rng) override;
};

}  // namespace activedp

#endif  // ACTIVEDP_ACTIVE_ADP_H_
