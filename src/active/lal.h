#ifndef ACTIVEDP_ACTIVE_LAL_H_
#define ACTIVEDP_ACTIVE_LAL_H_

#include <string>
#include <vector>

#include "active/sampler.h"
#include "ml/random_forest.h"

namespace activedp {

struct LalOptions {
  /// Offline meta-training: number of synthetic AL episodes and steps each.
  int episodes = 24;
  int steps_per_episode = 24;
  /// Synthetic task size (train and test pools).
  int task_size = 150;
  /// Candidates scored per query at run time.
  int pool_subsample = 64;
  uint64_t seed = 31;
};

/// Learning Active Learning (Konyushkova et al. 2017): a regressor is
/// meta-trained offline on synthetic 2-Gaussian AL episodes to predict the
/// generalization-error reduction of labelling a candidate from hand-crafted
/// state features; at run time the candidate with the highest predicted
/// reduction is queried. The regressor is the random forest the original
/// work uses.
class LalSampler : public Sampler {
 public:
  explicit LalSampler(LalOptions options = {});

  std::string name() const override { return "lal"; }
  int SelectQuery(const SamplerContext& context, Rng& rng) override;

  bool trained() const { return trained_; }

  /// State features: [p_max, entropy, margin, frac_labelled,
  /// labelled class balance, mean unlabelled p_max, unlabelled p_max var].
  static std::vector<double> StateFeatures(
      const std::vector<double>& candidate_proba, double frac_labeled,
      double labeled_positive_fraction, double mean_unlabeled_pmax,
      double var_unlabeled_pmax);

 private:
  void MetaTrain();

  LalOptions options_;
  RandomForestRegressor forest_;
  bool trained_ = false;
};

}  // namespace activedp

#endif  // ACTIVEDP_ACTIVE_LAL_H_
