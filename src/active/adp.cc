#include "active/adp.h"

#include <cmath>

#include "math/vector_ops.h"

namespace activedp {

int AdpSampler::SelectQuery(const SamplerContext& context, Rng& rng) {
  const bool has_al = context.al_proba != nullptr;
  const bool has_lm = context.lm_proba != nullptr;
  if (!has_al && !has_lm) {
    return internal::RandomUnqueried(context, rng);
  }
  const auto& queried = *context.queried;
  const double alpha = context.adp_alpha;
  const int n = context.train->size();
  int best = -1;
  double best_score = -1.0;
  for (int i = 0; i < n; ++i) {
    if (queried[i]) continue;
    double score;
    if (has_al && has_lm) {
      const double ea = Entropy((*context.al_proba)[i]);
      const double el = Entropy((*context.lm_proba)[i]);
      score = std::pow(ea, alpha) * std::pow(el, 1.0 - alpha);
    } else if (has_al) {
      score = Entropy((*context.al_proba)[i]);
    } else {
      score = Entropy((*context.lm_proba)[i]);
    }
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

}  // namespace activedp
