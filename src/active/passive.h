#ifndef ACTIVEDP_ACTIVE_PASSIVE_H_
#define ACTIVEDP_ACTIVE_PASSIVE_H_

#include <string>

#include "active/sampler.h"

namespace activedp {

/// Uniformly random selection over unqueried instances.
class PassiveSampler : public Sampler {
 public:
  std::string name() const override { return "passive"; }
  int SelectQuery(const SamplerContext& context, Rng& rng) override;
};

}  // namespace activedp

#endif  // ACTIVEDP_ACTIVE_PASSIVE_H_
