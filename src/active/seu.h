#ifndef ACTIVEDP_ACTIVE_SEU_H_
#define ACTIVEDP_ACTIVE_SEU_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "active/sampler.h"

namespace activedp {

struct SeuOptions {
  /// Candidate query instances scored per iteration.
  int pool_subsample = 32;
  /// Candidate LFs considered per instance (highest-coverage first).
  int max_candidates_per_instance = 24;
};

/// Nemo's "select by expected utility" strategy [12]: score each candidate
/// instance x by the expected utility of the LF the user would return,
///   score(x) = sum_λ P_user(λ | x) * utility(λ),
/// with the user model P_user ∝ LF coverage (the same model the simulated
/// user follows) and utility(λ) the model-estimated net correct labels over
/// λ's coverage set, up-weighting currently uncovered rows. Uses only
/// system-visible information (current label-model probabilities), never
/// ground truth.
class SeuSampler : public Sampler {
 public:
  explicit SeuSampler(SeuOptions options = {}) : options_(options) {}

  std::string name() const override { return "seu"; }
  int SelectQuery(const SamplerContext& context, Rng& rng) override;

 private:
  /// utility(λ): expected (correct - incorrect) over λ's coverage under the
  /// current probabilistic labels; uncovered rows get full weight, covered
  /// rows a small one.
  double Utility(const LabelFunction& lf, const SamplerContext& context,
                 std::unordered_map<std::string, double>& cache) const;

  void EnsureIndex(const SamplerContext& context);

  SeuOptions options_;
  const Dataset* indexed_dataset_ = nullptr;
  /// Text tasks: token id -> train rows containing the token.
  std::vector<std::vector<int>> token_rows_;
};

}  // namespace activedp

#endif  // ACTIVEDP_ACTIVE_SEU_H_
