#ifndef ACTIVEDP_ACTIVE_UNCERTAINTY_H_
#define ACTIVEDP_ACTIVE_UNCERTAINTY_H_

#include <string>

#include "active/sampler.h"

namespace activedp {

/// Classical uncertainty sampling [16]: query the instance with the highest
/// predictive entropy under the active-learning model. Falls back to random
/// selection before the first model exists.
class UncertaintySampler : public Sampler {
 public:
  std::string name() const override { return "us"; }
  int SelectQuery(const SamplerContext& context, Rng& rng) override;
};

}  // namespace activedp

#endif  // ACTIVEDP_ACTIVE_UNCERTAINTY_H_
