#ifndef ACTIVEDP_ML_LINEAR_MODEL_H_
#define ACTIVEDP_ML_LINEAR_MODEL_H_

#include <cstdint>
#include <vector>

#include "data/example.h"
#include "math/matrix.h"
#include "util/convergence.h"
#include "util/deadline.h"
#include "util/result.h"

namespace activedp {

struct LogisticRegressionOptions {
  double l2 = 3e-3;
  int epochs = 40;
  int batch_size = 32;
  double learning_rate = 0.05;  // Adam step size
  uint64_t seed = 1;
  /// The fit is reported converged when the largest parameter update in the
  /// final epoch is at most this (fixed-epoch SGD never stops early; this
  /// only drives the honesty of report().converged).
  double convergence_tolerance = 1e-2;
  /// Checked once per epoch; trips as DeadlineExceeded / Cancelled with the
  /// epoch count reached (partial progress) in the message.
  RunLimits limits;
  /// Warm start: when shaped (num_classes x dim+1) the fit begins from these
  /// weights instead of zeros — how the online retrainer refits incrementally
  /// from the served snapshot. Any other shape (including the default empty
  /// matrix) is ignored and the fit starts cold. Non-finite entries are
  /// rejected by the fit's finite guard (Status::Internal), never trained on.
  Matrix init_weights;
};

/// Multinomial (softmax) logistic regression on sparse features, trained
/// with mini-batch Adam on the cross-entropy against soft (probabilistic)
/// targets. Serves as the paper's active-learning model and downstream end
/// model (§4.1.3), both of which are logistic regressions; soft targets let
/// it train directly on the label model's probabilistic labels.
class LogisticRegression {
 public:
  LogisticRegression() = default;

  /// Trains on examples x[i] with soft targets y[i] (each a distribution
  /// over `num_classes`). Optional per-example weights (empty = all 1).
  static Result<LogisticRegression> Fit(
      const std::vector<SparseVector>& x,
      const std::vector<std::vector<double>>& y, int num_classes, int dim,
      const LogisticRegressionOptions& options = {},
      const std::vector<double>& sample_weights = {});

  /// Trains on hard integer labels.
  static Result<LogisticRegression> FitHard(
      const std::vector<SparseVector>& x, const std::vector<int>& labels,
      int num_classes, int dim, const LogisticRegressionOptions& options = {});

  /// Class-probability vector for one example.
  std::vector<double> PredictProba(const SparseVector& x) const;

  /// Raw-array variant over parallel (indices, values) arrays with ascending
  /// indices in [0, dim) — a CSR row view. Same kernel calls as the
  /// SparseVector overload, so the result is bitwise identical.
  std::vector<double> PredictProba(const int32_t* indices,
                                   const double* values, int nnz) const;

  /// Most likely class.
  int Predict(const SparseVector& x) const;

  /// Rebuilds a predict-only model from exported weights (row c holds
  /// [w_c (dim entries), b_c]); InvalidArgument on a shape mismatch. The
  /// report() of the result is empty — training history does not survive
  /// export.
  static Result<LogisticRegression> FromWeights(int num_classes, int dim,
                                                Matrix weights);

  int num_classes() const { return num_classes_; }
  int dim() const { return dim_; }

  /// Fitted parameter matrix (num_classes rows x dim+1 columns).
  const Matrix& weights() const { return weights_; }

  /// Raw (unnormalized) class scores w_c . x + b_c.
  std::vector<double> Logits(const SparseVector& x) const;

  /// CSR-row-view variant of Logits.
  std::vector<double> Logits(const int32_t* indices, const double* values,
                             int nnz) const;

  /// Honest training outcome: iterations = Adam steps taken, final_delta =
  /// largest parameter update in the last epoch. Fit returns
  /// Status::Internal instead of a model when the weights diverge to
  /// non-finite values (fault site "lr.fit": kNan / kNoConverge / kError).
  const ConvergenceReport& report() const { return report_; }

 private:
  int num_classes_ = 0;
  int dim_ = 0;
  /// Row c holds [w_c (dim entries), b_c].
  Matrix weights_;
  ConvergenceReport report_;
};

}  // namespace activedp

#endif  // ACTIVEDP_ML_LINEAR_MODEL_H_
