#include "ml/featurizer.h"

#include <cmath>
#include <cstring>

#include "util/check.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace activedp {

TabularFeaturizer::TabularFeaturizer(const Dataset& train) {
  CHECK_GT(train.size(), 0);
  const int d = static_cast<int>(train.example(0).features.size());
  means_.assign(d, 0.0);
  inv_stddevs_.assign(d, 1.0);
  for (const auto& e : train.examples()) {
    CHECK_EQ(static_cast<int>(e.features.size()), d);
    for (int j = 0; j < d; ++j) means_[j] += e.features[j];
  }
  for (double& m : means_) m /= train.size();
  std::vector<double> var(d, 0.0);
  for (const auto& e : train.examples()) {
    for (int j = 0; j < d; ++j) {
      const double delta = e.features[j] - means_[j];
      var[j] += delta * delta;
    }
  }
  for (int j = 0; j < d; ++j) {
    const double stddev = std::sqrt(var[j] / std::max(1, train.size() - 1));
    inv_stddevs_[j] = stddev > 1e-12 ? 1.0 / stddev : 1.0;
  }
}

TabularFeaturizer TabularFeaturizer::FromState(
    std::vector<double> means, std::vector<double> inv_stddevs) {
  CHECK_EQ(means.size(), inv_stddevs.size());
  TabularFeaturizer featurizer;
  featurizer.means_ = std::move(means);
  featurizer.inv_stddevs_ = std::move(inv_stddevs);
  return featurizer;
}

SparseVector TabularFeaturizer::Transform(const Example& example) const {
  SparseVector out;
  const int d = dim();
  CHECK_EQ(static_cast<int>(example.features.size()), d);
  out.indices.reserve(d);
  out.values.reserve(d);
  for (int j = 0; j < d; ++j) {
    out.PushBack(j, (example.features[j] - means_[j]) * inv_stddevs_[j]);
  }
  return out;
}

std::unique_ptr<Featurizer> MakeFeaturizer(const Dataset& train) {
  if (train.meta().task == TaskType::kTextClassification) {
    return std::make_unique<TextFeaturizer>(train);
  }
  return std::make_unique<TabularFeaturizer>(train);
}

std::vector<SparseVector> FeaturizeAll(const Featurizer& featurizer,
                                       const Dataset& dataset) {
  const int n = dataset.size();
  TraceSpan span("featurize.all");
  span.AddArg("rows", n);
  std::vector<SparseVector> out(n);
  // Each example's vector is written by exactly one chunk: bitwise identical
  // at any thread count.
  const Status status = ParallelForChunks(
      ComputePool(), n, BoundedGrain(n, 128, 1024), RunLimits::Unlimited(),
      "featurize", [&](int /*chunk*/, int begin, int end) {
        for (int i = begin; i < end; ++i) {
          out[i] = featurizer.Transform(dataset.example(i));
        }
      });
  CHECK(status.ok());  // unlimited budget: Check can never trip
  return out;
}

CsrMatrix FeaturizeAllCsr(const Featurizer& featurizer,
                          const Dataset& dataset) {
  // Transform in parallel (same chunking as FeaturizeAll), then bulk-pack
  // the rows: the row extents fix the layout up front and each row's slice
  // is copied by exactly one chunk, so the result is identical at any
  // thread count.
  const std::vector<SparseVector> rows = FeaturizeAll(featurizer, dataset);
  const int n = static_cast<int>(rows.size());
  CsrMatrix csr(n, featurizer.dim());
  std::vector<int> row_nnz(n);
  for (int i = 0; i < n; ++i) row_nnz[i] = rows[i].nnz();
  csr.SetRowExtents(row_nnz);
  const Status packed = ParallelForChunks(
      ComputePool(), n, BoundedGrain(n, 128, 1024), RunLimits::Unlimited(),
      "featurize", [&](int /*chunk*/, int begin, int end) {
        for (int i = begin; i < end; ++i) {
          const SparseVector& r = rows[i];
          if (r.nnz() == 0) continue;
          std::memcpy(csr.MutableRowIndices(i), r.indices.data(),
                      sizeof(int32_t) * r.nnz());
          std::memcpy(csr.MutableRowValues(i), r.values.data(),
                      sizeof(double) * r.nnz());
        }
      });
  CHECK(packed.ok());  // unlimited budget: Check can never trip
  return csr;
}

}  // namespace activedp
