#ifndef ACTIVEDP_ML_RANDOM_FOREST_H_
#define ACTIVEDP_ML_RANDOM_FOREST_H_

#include <vector>

#include "ml/decision_tree.h"
#include "util/result.h"
#include "util/rng.h"

namespace activedp {

struct RandomForestOptions {
  int num_trees = 30;
  DecisionTreeOptions tree;
  /// Bootstrap-sample size as a fraction of the training set.
  double bagging_fraction = 1.0;
};

/// Bagged ensemble of CART regression trees with per-split feature
/// subsampling. Used as the regressor in the LAL sampler.
class RandomForestRegressor {
 public:
  RandomForestRegressor() = default;

  static Result<RandomForestRegressor> Fit(
      const std::vector<std::vector<double>>& x, const std::vector<double>& y,
      RandomForestOptions options, Rng& rng);

  double Predict(const std::vector<double>& features) const;

  int num_trees() const { return static_cast<int>(trees_.size()); }

 private:
  std::vector<DecisionTreeRegressor> trees_;
};

}  // namespace activedp

#endif  // ACTIVEDP_ML_RANDOM_FOREST_H_
