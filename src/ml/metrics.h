#ifndef ACTIVEDP_ML_METRICS_H_
#define ACTIVEDP_ML_METRICS_H_

#include <vector>

#include "math/matrix.h"

namespace activedp {

/// Fraction of predictions equal to labels. Entries where pred < 0
/// (abstain/rejected) are excluded from both numerator and denominator;
/// returns 0 when nothing is predicted.
double Accuracy(const std::vector<int>& predictions,
                const std::vector<int>& labels);

/// Fraction of entries with a prediction (pred >= 0).
double Coverage(const std::vector<int>& predictions);

/// num_classes x num_classes confusion counts (rows = truth, cols = pred);
/// abstentions are skipped.
Matrix ConfusionCounts(const std::vector<int>& predictions,
                       const std::vector<int>& labels, int num_classes);

struct PrecisionRecallF1 {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// One-vs-rest precision/recall/F1 for `positive_class`. Abstaining
/// predictions (< 0) are skipped, consistent with Accuracy — an abstain is
/// "no prediction", not a negative vote.
PrecisionRecallF1 BinaryPrf(const std::vector<int>& predictions,
                            const std::vector<int>& labels,
                            int positive_class);

/// Mean of a performance curve's y-values — the paper's summary metric
/// ("average test accuracy during the run, corresponding to the area under
/// the performance curve", §4.1.3).
double CurveAverage(const std::vector<double>& curve);

/// Multiclass Brier score: mean squared error between predicted
/// distributions and one-hot labels (lower is better; 0 is perfect).
/// Calibration matters here because ConFusion routes instances by the AL
/// model's confidence.
double BrierScore(const std::vector<std::vector<double>>& proba,
                  const std::vector<int>& labels);

/// Expected calibration error with equal-width confidence bins: the
/// coverage-weighted |accuracy - mean confidence| over bins of the top-1
/// confidence.
double ExpectedCalibrationError(
    const std::vector<std::vector<double>>& proba,
    const std::vector<int>& labels, int bins = 10);

}  // namespace activedp

#endif  // ACTIVEDP_ML_METRICS_H_
