#ifndef ACTIVEDP_ML_FEATURIZER_H_
#define ACTIVEDP_ML_FEATURIZER_H_

#include <memory>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "data/example.h"
#include "math/csr_matrix.h"
#include "text/tfidf.h"

namespace activedp {

/// Maps examples to sparse feature vectors for the linear models. Fit on the
/// training split; applied to every split.
class Featurizer {
 public:
  virtual ~Featurizer() = default;
  virtual SparseVector Transform(const Example& example) const = 0;
  virtual int dim() const = 0;
};

/// TF-IDF features for text tasks.
class TextFeaturizer : public Featurizer {
 public:
  explicit TextFeaturizer(const Dataset& train)
      : tfidf_(TfidfFeaturizer::Fit(train)) {}
  /// Wraps an already-fitted (e.g. snapshot-restored) TF-IDF featurizer.
  explicit TextFeaturizer(TfidfFeaturizer tfidf) : tfidf_(std::move(tfidf)) {}

  SparseVector Transform(const Example& example) const override {
    return tfidf_.Transform(example);
  }
  int dim() const override { return tfidf_.dim(); }

  const TfidfFeaturizer& tfidf() const { return tfidf_; }

 private:
  TfidfFeaturizer tfidf_;
};

/// Standardized (z-scored) raw features for tabular tasks.
class TabularFeaturizer : public Featurizer {
 public:
  explicit TabularFeaturizer(const Dataset& train);

  /// Rebuilds a featurizer from exported state (parallel mean /
  /// inverse-stddev arrays).
  static TabularFeaturizer FromState(std::vector<double> means,
                                     std::vector<double> inv_stddevs);

  SparseVector Transform(const Example& example) const override;
  int dim() const override { return static_cast<int>(means_.size()); }

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& inv_stddevs() const { return inv_stddevs_; }

 private:
  TabularFeaturizer() = default;

  std::vector<double> means_;
  std::vector<double> inv_stddevs_;
};

/// Builds the right featurizer for the dataset's task type.
std::unique_ptr<Featurizer> MakeFeaturizer(const Dataset& train);

/// Applies `featurizer` to every example of `dataset`.
std::vector<SparseVector> FeaturizeAll(const Featurizer& featurizer,
                                       const Dataset& dataset);

/// Applies `featurizer` to every example and packs the rows into one CSR
/// matrix (n x featurizer.dim()). Row r holds exactly the indices/values of
/// `featurizer.Transform(dataset.example(r))` in the same order, so any
/// per-row computation over the CSR form is bitwise identical to the
/// per-SparseVector path.
CsrMatrix FeaturizeAllCsr(const Featurizer& featurizer, const Dataset& dataset);

}  // namespace activedp

#endif  // ACTIVEDP_ML_FEATURIZER_H_
