#include "ml/random_forest.h"

#include <cmath>

namespace activedp {

Result<RandomForestRegressor> RandomForestRegressor::Fit(
    const std::vector<std::vector<double>>& x, const std::vector<double>& y,
    RandomForestOptions options, Rng& rng) {
  if (x.empty()) return Status::InvalidArgument("no training rows");
  if (x.size() != y.size()) return Status::InvalidArgument("x/y mismatch");
  if (options.num_trees <= 0)
    return Status::InvalidArgument("num_trees must be positive");

  const int n = static_cast<int>(x.size());
  if (options.tree.max_features <= 0) {
    // Default for regression forests: d/3 features per split (at least 1).
    options.tree.max_features =
        std::max(1, static_cast<int>(x[0].size()) / 3);
  }
  const int bag_size =
      std::max(1, static_cast<int>(options.bagging_fraction * n));

  RandomForestRegressor forest;
  forest.trees_.reserve(options.num_trees);
  for (int t = 0; t < options.num_trees; ++t) {
    std::vector<int> bag(bag_size);
    for (int i = 0; i < bag_size; ++i) bag[i] = rng.UniformInt(n);
    ASSIGN_OR_RETURN(DecisionTreeRegressor tree,
                     DecisionTreeRegressor::Fit(x, y, options.tree, rng, bag));
    forest.trees_.push_back(std::move(tree));
  }
  return forest;
}

double RandomForestRegressor::Predict(
    const std::vector<double>& features) const {
  CHECK(!trees_.empty());
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.Predict(features);
  return sum / trees_.size();
}

}  // namespace activedp
