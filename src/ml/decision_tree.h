#ifndef ACTIVEDP_ML_DECISION_TREE_H_
#define ACTIVEDP_ML_DECISION_TREE_H_

#include <cstdint>
#include <vector>

#include "util/result.h"
#include "util/rng.h"

namespace activedp {

struct DecisionTreeOptions {
  int max_depth = 8;
  int min_samples_leaf = 3;
  /// Number of features tried per split; <= 0 means all features.
  int max_features = 0;
};

/// CART regression tree on dense feature rows, splitting to minimize the sum
/// of squared errors. Substrate for RandomForestRegressor (which the LAL
/// sampler uses, per Konyushkova et al. 2017).
class DecisionTreeRegressor {
 public:
  DecisionTreeRegressor() = default;

  /// Trains on rows x (all the same length) with targets y. `row_indices`
  /// selects the training subset (for bagging); empty means all rows.
  static Result<DecisionTreeRegressor> Fit(
      const std::vector<std::vector<double>>& x, const std::vector<double>& y,
      const DecisionTreeOptions& options, Rng& rng,
      const std::vector<int>& row_indices = {});

  double Predict(const std::vector<double>& features) const;

  int node_count() const { return static_cast<int>(nodes_.size()); }

 private:
  struct Node {
    int feature = -1;      // -1 for leaf
    double threshold = 0;  // go left if x[feature] <= threshold
    double value = 0;      // leaf prediction (mean target)
    int left = -1;
    int right = -1;
  };

  int BuildNode(const std::vector<std::vector<double>>& x,
                const std::vector<double>& y, std::vector<int>& indices,
                int begin, int end, int depth,
                const DecisionTreeOptions& options, Rng& rng);

  std::vector<Node> nodes_;
};

}  // namespace activedp

#endif  // ACTIVEDP_ML_DECISION_TREE_H_
