#include "ml/linear_model.h"

#include <cmath>
#include <limits>
#include <numeric>

#include "math/kernels.h"
#include "math/vector_ops.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/trace.h"

namespace activedp {

Result<LogisticRegression> LogisticRegression::Fit(
    const std::vector<SparseVector>& x,
    const std::vector<std::vector<double>>& y, int num_classes, int dim,
    const LogisticRegressionOptions& options,
    const std::vector<double>& sample_weights) {
  if (x.empty()) return Status::InvalidArgument("no training examples");
  if (x.size() != y.size())
    return Status::InvalidArgument("x/y size mismatch");
  if (num_classes < 2) return Status::InvalidArgument("need >= 2 classes");
  if (!sample_weights.empty() && sample_weights.size() != x.size())
    return Status::InvalidArgument("sample_weights size mismatch");

  TraceSpan span("lr.fit");
  span.AddArg("n", static_cast<int64_t>(x.size()));

  const FaultKind fault = CheckFault(
      "lr.fit", {FaultKind::kNan, FaultKind::kNoConverge, FaultKind::kError});
  if (fault == FaultKind::kError) {
    return Status::Internal("injected fault at lr.fit");
  }

  const int n = static_cast<int>(x.size());
  const int w_cols = dim + 1;  // trailing bias column
  LogisticRegression model;
  model.num_classes_ = num_classes;
  model.dim_ = dim;
  model.weights_ = Matrix(num_classes, w_cols);
  if (options.init_weights.rows() == num_classes &&
      options.init_weights.cols() == w_cols) {
    // Warm start from a previous fit's weights; the finite guard below still
    // vets the final weights, so a poisoned warm start cannot leak through.
    model.weights_ = options.init_weights;
  }

  // Adam state.
  Matrix m(num_classes, w_cols);
  Matrix v(num_classes, w_cols);
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  int step = 0;

  Rng rng(options.seed);
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);

  Matrix grad(num_classes, w_cols);
  double epoch_max_update = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    const Status limit = options.limits.Check("lr.fit");
    if (!limit.ok()) {
      return Status(limit.code(),
                    "logistic regression: " + limit.message() + " after " +
                        std::to_string(epoch) + " of " +
                        std::to_string(options.epochs) + " epochs (" +
                        std::to_string(step) + " Adam steps)");
    }
    epoch_max_update = 0.0;
    rng.Shuffle(order);
    for (int begin = 0; begin < n; begin += options.batch_size) {
      const int end = std::min(n, begin + options.batch_size);
      grad.Fill(0.0);
      double weight_total = 0.0;
      for (int idx = begin; idx < end; ++idx) {
        const int i = order[idx];
        const double sw = sample_weights.empty() ? 1.0 : sample_weights[i];
        if (sw == 0.0) continue;
        weight_total += sw;
        const std::vector<double> p = model.PredictProba(x[i]);
        for (int c = 0; c < num_classes; ++c) {
          const double delta = sw * (p[c] - y[i][c]);
          if (delta == 0.0) continue;
          double* g = grad.RowPtr(c);
          for (int k = 0; k < x[i].nnz(); ++k) {
            g[x[i].indices[k]] += delta * x[i].values[k];
          }
          g[dim] += delta;  // bias
        }
      }
      if (weight_total == 0.0) continue;
      // L2 regularization on weights (not bias), scaled per batch.
      for (int c = 0; c < num_classes; ++c) {
        double* g = grad.RowPtr(c);
        const double* w = model.weights_.RowPtr(c);
        for (int k = 0; k < dim; ++k) {
          g[k] = g[k] / weight_total + options.l2 * w[k];
        }
        g[dim] /= weight_total;
      }
      // Adam update.
      ++step;
      const double bc1 = 1.0 - std::pow(beta1, step);
      const double bc2 = 1.0 - std::pow(beta2, step);
      for (int c = 0; c < num_classes; ++c) {
        double* w = model.weights_.RowPtr(c);
        double* mc = m.RowPtr(c);
        double* vc = v.RowPtr(c);
        const double* g = grad.RowPtr(c);
        for (int k = 0; k < w_cols; ++k) {
          mc[k] = beta1 * mc[k] + (1.0 - beta1) * g[k];
          vc[k] = beta2 * vc[k] + (1.0 - beta2) * g[k] * g[k];
          const double mhat = mc[k] / bc1;
          const double vhat = vc[k] / bc2;
          const double update =
              options.learning_rate * mhat / (std::sqrt(vhat) + eps);
          w[k] -= update;
          epoch_max_update = std::max(epoch_max_update, std::fabs(update));
        }
      }
    }
  }

  if (fault == FaultKind::kNan && model.weights_.rows() > 0) {
    model.weights_(0, 0) = std::numeric_limits<double>::quiet_NaN();
  }
  // Finite guard: a diverged fit surfaces as Status, never as a model that
  // emits NaN probabilities into the pipeline.
  bool finite = true;
  for (int c = 0; c < num_classes && finite; ++c) {
    const double* w = model.weights_.RowPtr(c);
    for (int k = 0; k < w_cols; ++k) {
      if (!std::isfinite(w[k])) {
        finite = false;
        break;
      }
    }
  }
  MetricsRegistry::Global().counter("lr.epochs").Increment(options.epochs);
  span.AddArg("adam_steps", step);
  model.report_.iterations = step;
  model.report_.final_delta = epoch_max_update;
  model.report_.finite = finite;
  model.report_.converged =
      finite && epoch_max_update <= options.convergence_tolerance;
  if (!model.report_.converged) {
    TraceInstant("convergence", "lr.fit",
                 finite ? "update above tolerance after " +
                              std::to_string(step) + " Adam steps"
                        : "non-finite weights");
  }
  if (!finite) {
    return Status::Internal(
        "logistic regression diverged: non-finite weights after " +
        std::to_string(step) + " steps");
  }
  if (fault == FaultKind::kNoConverge) {
    return Status::Internal(
        "logistic regression did not converge (injected fault at lr.fit)");
  }
  return model;
}

Result<LogisticRegression> LogisticRegression::FromWeights(int num_classes,
                                                           int dim,
                                                           Matrix weights) {
  if (num_classes < 2 || dim <= 0) {
    return Status::InvalidArgument("FromWeights: bad shape (" +
                                   std::to_string(num_classes) + " classes, " +
                                   std::to_string(dim) + " features)");
  }
  if (weights.rows() != num_classes || weights.cols() != dim + 1) {
    return Status::InvalidArgument(
        "FromWeights: weight matrix is " + std::to_string(weights.rows()) +
        "x" + std::to_string(weights.cols()) + ", expected " +
        std::to_string(num_classes) + "x" + std::to_string(dim + 1));
  }
  LogisticRegression model;
  model.num_classes_ = num_classes;
  model.dim_ = dim;
  model.weights_ = std::move(weights);
  return model;
}

Result<LogisticRegression> LogisticRegression::FitHard(
    const std::vector<SparseVector>& x, const std::vector<int>& labels,
    int num_classes, int dim, const LogisticRegressionOptions& options) {
  if (x.size() != labels.size())
    return Status::InvalidArgument("x/labels size mismatch");
  std::vector<std::vector<double>> soft(labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] < 0 || labels[i] >= num_classes)
      return Status::InvalidArgument("label out of range");
    soft[i].assign(num_classes, 0.0);
    soft[i][labels[i]] = 1.0;
  }
  return Fit(x, soft, num_classes, dim, options);
}

std::vector<double> LogisticRegression::Logits(const SparseVector& x) const {
  return Logits(x.indices.data(), x.values.data(), x.nnz());
}

std::vector<double> LogisticRegression::Logits(const int32_t* indices,
                                               const double* values,
                                               int nnz) const {
#ifndef NDEBUG
  for (int k = 0; k < nnz; ++k) DCHECK(indices[k] < dim_);
#endif
  std::vector<double> logits(num_classes_);
  for (int c = 0; c < num_classes_; ++c) {
    const double* w = weights_.RowPtr(c);
    logits[c] = w[dim_] +  // bias
                kernels::DotSparse(indices, values, nnz, w);
  }
  return logits;
}

std::vector<double> LogisticRegression::PredictProba(
    const SparseVector& x) const {
  return Softmax(Logits(x));
}

std::vector<double> LogisticRegression::PredictProba(const int32_t* indices,
                                                     const double* values,
                                                     int nnz) const {
  return Softmax(Logits(indices, values, nnz));
}

int LogisticRegression::Predict(const SparseVector& x) const {
  return ArgMax(Logits(x));
}

}  // namespace activedp
