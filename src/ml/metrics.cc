#include "ml/metrics.h"

#include <cmath>

#include "math/vector_ops.h"
#include "util/check.h"

namespace activedp {

double Accuracy(const std::vector<int>& predictions,
                const std::vector<int>& labels) {
  CHECK_EQ(predictions.size(), labels.size());
  int correct = 0, predicted = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] < 0) continue;
    ++predicted;
    if (predictions[i] == labels[i]) ++correct;
  }
  return predicted == 0 ? 0.0
                        : static_cast<double>(correct) / predicted;
}

double Coverage(const std::vector<int>& predictions) {
  if (predictions.empty()) return 0.0;
  int predicted = 0;
  for (int p : predictions) {
    if (p >= 0) ++predicted;
  }
  return static_cast<double>(predicted) / predictions.size();
}

Matrix ConfusionCounts(const std::vector<int>& predictions,
                       const std::vector<int>& labels, int num_classes) {
  CHECK_EQ(predictions.size(), labels.size());
  Matrix counts(num_classes, num_classes);
  for (size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] < 0) continue;
    CHECK_LT(predictions[i], num_classes);
    CHECK_GE(labels[i], 0);
    CHECK_LT(labels[i], num_classes);
    counts(labels[i], predictions[i]) += 1.0;
  }
  return counts;
}

PrecisionRecallF1 BinaryPrf(const std::vector<int>& predictions,
                            const std::vector<int>& labels,
                            int positive_class) {
  CHECK_EQ(predictions.size(), labels.size());
  int tp = 0, fp = 0, fn = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    // Abstains are skipped, matching Accuracy: counting them as negative
    // predictions would silently inflate fn and depress recall.
    if (predictions[i] < 0) continue;
    const bool pred_pos = predictions[i] == positive_class;
    const bool true_pos = labels[i] == positive_class;
    if (pred_pos && true_pos) ++tp;
    if (pred_pos && !true_pos) ++fp;
    if (!pred_pos && true_pos) ++fn;
  }
  PrecisionRecallF1 out;
  if (tp + fp > 0) out.precision = static_cast<double>(tp) / (tp + fp);
  if (tp + fn > 0) out.recall = static_cast<double>(tp) / (tp + fn);
  if (out.precision + out.recall > 0.0) {
    out.f1 = 2.0 * out.precision * out.recall / (out.precision + out.recall);
  }
  return out;
}

double CurveAverage(const std::vector<double>& curve) { return Mean(curve); }

double BrierScore(const std::vector<std::vector<double>>& proba,
                  const std::vector<int>& labels) {
  CHECK_EQ(proba.size(), labels.size());
  if (proba.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < proba.size(); ++i) {
    double row_total = 0.0;
    bool finite = true;
    for (size_t c = 0; c < proba[i].size(); ++c) {
      const double target = static_cast<int>(c) == labels[i] ? 1.0 : 0.0;
      const double delta = proba[i][c] - target;
      row_total += delta * delta;
      finite = finite && std::isfinite(proba[i][c]);
    }
    // A non-finite row is an upstream bug; score it like an uncovered row
    // rather than letting one NaN erase the whole aggregate.
    if (finite) total += row_total;
  }
  return total / proba.size();
}

double ExpectedCalibrationError(
    const std::vector<std::vector<double>>& proba,
    const std::vector<int>& labels, int bins) {
  CHECK_EQ(proba.size(), labels.size());
  CHECK_GT(bins, 0);
  if (proba.empty()) return 0.0;
  std::vector<double> bin_confidence(bins, 0.0);
  std::vector<double> bin_correct(bins, 0.0);
  std::vector<int> bin_count(bins, 0);
  int scored = 0;
  for (size_t i = 0; i < proba.size(); ++i) {
    // Empty rows mean "no prediction"; non-finite confidences are upstream
    // bugs that must not poison the aggregate.
    if (proba[i].empty()) continue;
    const int prediction = ArgMax(proba[i]);
    const double confidence = proba[i][prediction];
    if (!std::isfinite(confidence)) continue;
    int bin = static_cast<int>(confidence * bins);
    if (bin >= bins) bin = bins - 1;
    if (bin < 0) bin = 0;
    bin_confidence[bin] += confidence;
    bin_correct[bin] += prediction == labels[i] ? 1.0 : 0.0;
    ++bin_count[bin];
    ++scored;
  }
  if (scored == 0) return 0.0;
  double ece = 0.0;
  for (int b = 0; b < bins; ++b) {
    if (bin_count[b] == 0) continue;
    const double accuracy = bin_correct[b] / bin_count[b];
    const double confidence = bin_confidence[b] / bin_count[b];
    ece += (static_cast<double>(bin_count[b]) / scored) *
           std::fabs(accuracy - confidence);
  }
  return ece;
}

}  // namespace activedp
