#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace activedp {
namespace {

double MeanOf(const std::vector<double>& y, const std::vector<int>& indices,
              int begin, int end) {
  double sum = 0.0;
  for (int i = begin; i < end; ++i) sum += y[indices[i]];
  return sum / (end - begin);
}

}  // namespace

Result<DecisionTreeRegressor> DecisionTreeRegressor::Fit(
    const std::vector<std::vector<double>>& x, const std::vector<double>& y,
    const DecisionTreeOptions& options, Rng& rng,
    const std::vector<int>& row_indices) {
  if (x.empty()) return Status::InvalidArgument("no training rows");
  if (x.size() != y.size()) return Status::InvalidArgument("x/y mismatch");
  std::vector<int> indices = row_indices;
  if (indices.empty()) {
    indices.resize(x.size());
    std::iota(indices.begin(), indices.end(), 0);
  }
  DecisionTreeRegressor tree;
  tree.BuildNode(x, y, indices, 0, static_cast<int>(indices.size()), 0,
                 options, rng);
  return tree;
}

int DecisionTreeRegressor::BuildNode(const std::vector<std::vector<double>>& x,
                                     const std::vector<double>& y,
                                     std::vector<int>& indices, int begin,
                                     int end, int depth,
                                     const DecisionTreeOptions& options,
                                     Rng& rng) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].value = MeanOf(y, indices, begin, end);

  const int n = end - begin;
  if (depth >= options.max_depth || n < 2 * options.min_samples_leaf) {
    return node_id;
  }

  const int num_features = static_cast<int>(x[0].size());
  int features_to_try = options.max_features > 0
                            ? std::min(options.max_features, num_features)
                            : num_features;

  // Candidate features (random subset for forests).
  std::vector<int> feature_order(num_features);
  std::iota(feature_order.begin(), feature_order.end(), 0);
  if (features_to_try < num_features) rng.Shuffle(feature_order);

  double best_score = std::numeric_limits<double>::infinity();
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::pair<double, double>> fv(n);  // (feature value, target)
  for (int fi = 0; fi < features_to_try; ++fi) {
    const int f = feature_order[fi];
    for (int i = 0; i < n; ++i) {
      const int row = indices[begin + i];
      fv[i] = {x[row][f], y[row]};
    }
    std::sort(fv.begin(), fv.end());
    // Prefix sums over sorted targets to score every split in O(n).
    double left_sum = 0.0, left_sq = 0.0;
    double total_sum = 0.0, total_sq = 0.0;
    for (const auto& [v, t] : fv) {
      total_sum += t;
      total_sq += t * t;
    }
    for (int i = 0; i < n - 1; ++i) {
      left_sum += fv[i].second;
      left_sq += fv[i].second * fv[i].second;
      if (fv[i].first == fv[i + 1].first) continue;  // not a valid cut
      const int left_n = i + 1;
      const int right_n = n - left_n;
      if (left_n < options.min_samples_leaf ||
          right_n < options.min_samples_leaf)
        continue;
      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      // SSE = sum(t^2) - n * mean^2 per side.
      const double sse = (left_sq - left_sum * left_sum / left_n) +
                         (right_sq - right_sum * right_sum / right_n);
      if (sse < best_score) {
        best_score = sse;
        best_feature = f;
        best_threshold = 0.5 * (fv[i].first + fv[i + 1].first);
      }
    }
  }

  if (best_feature < 0) return node_id;  // no valid split

  // Partition indices[begin, end) by the chosen split.
  auto middle = std::partition(
      indices.begin() + begin, indices.begin() + end,
      [&](int row) { return x[row][best_feature] <= best_threshold; });
  const int mid = static_cast<int>(middle - indices.begin());
  if (mid == begin || mid == end) return node_id;  // degenerate

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int left = BuildNode(x, y, indices, begin, mid, depth + 1, options, rng);
  const int right = BuildNode(x, y, indices, mid, end, depth + 1, options, rng);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double DecisionTreeRegressor::Predict(
    const std::vector<double>& features) const {
  CHECK(!nodes_.empty());
  int node = 0;
  while (nodes_[node].feature >= 0) {
    const Node& cur = nodes_[node];
    DCHECK(cur.feature < static_cast<int>(features.size()));
    node = features[cur.feature] <= cur.threshold ? cur.left : cur.right;
  }
  return nodes_[node].value;
}

}  // namespace activedp
