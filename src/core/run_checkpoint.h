#ifndef ACTIVEDP_CORE_RUN_CHECKPOINT_H_
#define ACTIVEDP_CORE_RUN_CHECKPOINT_H_

#include <string>

#include "core/experiment.h"
#include "util/result.h"

namespace activedp {

/// Progress snapshot of one RunProtocol() invocation, persisted after every
/// evaluation so a killed run (crash, preemption, Ctrl-C) resumes at the
/// last evaluated budget instead of restarting from iteration 1.
///
/// Resume works by deterministic replay: every framework run is a pure
/// function of its seed, and evaluation (end-model training) does not
/// mutate framework state. RunProtocol therefore replays Step() for
/// iterations up to `completed_iterations`, reuses the recorded evaluation
/// rows in `partial`, and continues live from there — producing a RunResult
/// bitwise-identical to an uninterrupted run.
///
/// File format (line-based text, checksum footer via util/atomic_file.h):
///   activedp-checkpoint v1
///   iter <completed_iterations>
///   eval <budget> <test_accuracy> <label_accuracy> <label_coverage>
///   ...
///   #crc64 <hex>
/// Doubles are rendered with %.17g so values round-trip exactly.
struct RunCheckpoint {
  /// Number of Step() iterations fully processed (the budget of the last
  /// recorded evaluation).
  int completed_iterations = 0;
  /// Evaluation rows recorded so far. average_test_accuracy is recomputed
  /// at the end of the run and is not persisted.
  RunResult partial;
};

/// Atomically writes the checkpoint (tmp + fsync + rename + checksum
/// footer). Honors the "checkpoint.save" fault site.
Status SaveRunCheckpoint(const RunCheckpoint& checkpoint,
                         const std::string& path);

/// Loads and validates a checkpoint. NotFound when the file does not exist
/// (callers treat this as "start fresh"); InvalidArgument, with a line
/// number, for truncated/garbled files — never aborts.
Result<RunCheckpoint> LoadRunCheckpoint(const std::string& path);

}  // namespace activedp

#endif  // ACTIVEDP_CORE_RUN_CHECKPOINT_H_
