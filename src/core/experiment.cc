#include "core/experiment.h"

#include <algorithm>

#include "core/run_checkpoint.h"
#include "data/dataset_zoo.h"
#include "math/vector_ops.h"
#include "ml/metrics.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace activedp {

std::string FrameworkDisplayName(FrameworkType type) {
  switch (type) {
    case FrameworkType::kActiveDp:
      return "ActiveDP";
    case FrameworkType::kNemo:
      return "Nemo";
    case FrameworkType::kIws:
      return "IWS";
    case FrameworkType::kRlf:
      return "RevisingLF";
    case FrameworkType::kUs:
      return "US";
    case FrameworkType::kActiveWeasul:
      return "ActiveWeaSuL";
  }
  return "unknown";
}

Result<FrameworkType> ParseFrameworkType(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "activedp" || lower == "adp") return FrameworkType::kActiveDp;
  if (lower == "nemo") return FrameworkType::kNemo;
  if (lower == "iws") return FrameworkType::kIws;
  if (lower == "rlf" || lower == "revisinglf") return FrameworkType::kRlf;
  if (lower == "us" || lower == "uncertainty") return FrameworkType::kUs;
  if (lower == "aw" || lower == "active-weasul" || lower == "activeweasul") {
    return FrameworkType::kActiveWeasul;
  }
  return Status::InvalidArgument(
      "unknown framework '" + name +
      "' (expected one of: activedp, nemo, iws, rlf, us, aw)");
}

std::unique_ptr<InteractiveFramework> MakeFramework(
    FrameworkType type, const FrameworkContext& context,
    const ActiveDpOptions& adp_options) {
  if (type == FrameworkType::kActiveDp) {
    return std::make_unique<ActiveDp>(context, adp_options);
  }
  BaselineOptions baseline;
  baseline.label_model_type = adp_options.label_model_type;
  baseline.user = adp_options.user;
  baseline.al_lr = adp_options.al_lr;
  baseline.seed = adp_options.seed;
  switch (type) {
    case FrameworkType::kNemo:
      return std::make_unique<NemoFramework>(context, baseline);
    case FrameworkType::kIws:
      return std::make_unique<IwsFramework>(context, baseline);
    case FrameworkType::kRlf:
      return std::make_unique<RlfFramework>(context, baseline);
    case FrameworkType::kUs:
      return std::make_unique<UncertaintyFramework>(context, baseline);
    case FrameworkType::kActiveWeasul:
      return std::make_unique<ActiveWeasulFramework>(context, baseline);
    case FrameworkType::kActiveDp:
      break;
  }
  return std::make_unique<ActiveDp>(context, adp_options);
}

RunResult RunProtocol(InteractiveFramework& framework,
                      const FrameworkContext& context,
                      const ProtocolOptions& options) {
  RunResult result;
  // Resume: the framework run is deterministic and evaluation does not
  // mutate framework state, so replaying Step() up to the checkpointed
  // iteration while reusing its recorded evaluation rows reproduces an
  // uninterrupted run bit for bit.
  int resume_through = 0;
  const RunPolicy& policy = options.policy;
  if (!policy.checkpoint_path.empty()) {
    TraceSpan load_span("checkpoint.load");
    Result<RunCheckpoint> loaded = LoadRunCheckpoint(policy.checkpoint_path);
    if (loaded.ok()) {
      resume_through = loaded->completed_iterations;
      result = std::move(loaded->partial);
      LOG(Info) << framework.name() << " resuming from checkpoint at "
                << resume_through << " iterations ("
                << policy.checkpoint_path << ")";
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      // Degradation cascade step 4: a corrupt/truncated checkpoint must not
      // take the run down with it — start fresh instead.
      if (policy.recovery != nullptr) {
        policy.recovery->Record("checkpoint", loaded.status().ToString(),
                                "ignoring unusable checkpoint, fresh start");
      }
      LOG(Warning) << "ignoring unusable checkpoint "
                   << policy.checkpoint_path << " ("
                   << loaded.status().ToString() << "); starting fresh";
    }
  }
  Retrier retrier(policy.retry, policy.retry_log);
  for (int iteration = 1; iteration <= options.iterations; ++iteration) {
    TraceSpan round_span("protocol.round");
    round_span.AddArg("iteration", iteration);
    MetricsRegistry::Global().counter("protocol.rounds").Increment();
    const Status limit = policy.limits.Check("protocol");
    if (!limit.ok()) {
      result.termination =
          Status(limit.code(), limit.message() + " after " +
                                   std::to_string(iteration - 1) + " of " +
                                   std::to_string(options.iterations) +
                                   " iterations");
      TraceInstant("deadline", "protocol", result.termination.ToString());
      LOG(Info) << framework.name() << " budget tripped: "
                << result.termination.ToString();
      break;
    }
    const Status status = framework.Step();
    if (!status.ok()) {
      if (status.code() == StatusCode::kDeadlineExceeded ||
          status.code() == StatusCode::kCancelled) {
        result.termination = status;
        TraceInstant("deadline", "protocol.step", status.ToString());
      }
      LOG(Debug) << framework.name() << " stopped at iteration " << iteration
                 << ": " << status.ToString();
      break;
    }
    if (iteration % options.eval_every != 0) continue;
    // Replayed iterations reuse the evaluation rows already in `result`.
    if (iteration <= resume_through) continue;

    TraceSpan eval_span("protocol.eval");
    const std::vector<std::vector<double>> labels =
        framework.CurrentTrainingLabels();
    const LabelQuality quality =
        MeasureLabelQuality(labels, context.split->train);
    double accuracy = 0.0;
    Result<LogisticRegression> end_model = [&]() {
      TraceSpan fit_span("end_model.fit");
      return TrainEndModel(context.train_features, labels, context.num_classes,
                           context.feature_dim, options.end_model);
    }();
    if (end_model.ok()) {
      accuracy = EvaluateAccuracy(*end_model, context.test_features,
                                  context.test_labels);
    } else if (policy.recovery != nullptr) {
      policy.recovery->Record("end_model", end_model.status().ToString(),
                              "recording zero accuracy for this evaluation");
    }
    result.budgets.push_back(iteration);
    result.test_accuracy.push_back(accuracy);
    result.label_accuracy.push_back(quality.accuracy);
    result.label_coverage.push_back(quality.coverage);

    if (!policy.checkpoint_path.empty()) {
      TraceSpan save_span("checkpoint.save");
      RunCheckpoint checkpoint;
      checkpoint.completed_iterations = iteration;
      checkpoint.partial = result;
      // Retry-before-degrade for the "checkpoint.save" fault site; only
      // after the attempts are spent does the run continue uncheckpointed.
      const Status saved =
          retrier.Run("checkpoint.save", policy.limits, [&]() {
            return SaveRunCheckpoint(checkpoint, policy.checkpoint_path);
          });
      if (!saved.ok()) {
        // A failed checkpoint save degrades resumability, not the run.
        if (policy.recovery != nullptr) {
          policy.recovery->Record("checkpoint", saved.ToString(),
                                  "continuing without checkpoint");
        }
        LOG(Warning) << "checkpoint save failed ("
                     << saved.ToString() << "); continuing without it";
      }
    }
  }
  result.average_test_accuracy = CurveAverage(result.test_accuracy);
  return result;
}

Result<RunResult> RunExperiment(const ExperimentSpec& spec) {
  CHECK_GT(spec.num_seeds, 0);
  if (spec.compute_threads > 0) SetComputePoolThreads(spec.compute_threads);

  // Arm the tracer for this experiment when a trace sink was requested.
  // Metrics are reset alongside so the written snapshot covers this run
  // only. An experiment without trace_dir leaves any caller-armed tracer
  // alone.
  const bool tracing = !spec.policy.trace_dir.empty();
  if (tracing) {
    MetricsRegistry::Global().ResetAll();
    Tracer::Global().Enable();
  }

  // Worker isolation: each seed runs under its own cancellation source
  // (child of the experiment token) and, when a per-seed budget is set,
  // its own deadline backed by the watchdog — so one wedged or faulted
  // seed is cancelled and excluded instead of holding its pool slot.
  Watchdog watchdog;

  // Each seed is a self-contained (dataset, framework, protocol) run.
  auto run_seed = [&spec, &watchdog](int s) -> Result<RunResult> {
    // Each seed records on its own trace track, so parallel seeds land on
    // separate deterministic lanes regardless of pool scheduling.
    TraceTrackScope track(s);
    TraceSpan seed_span("experiment.seed");
    seed_span.AddArg("seed_ordinal", s);
    auto source =
        std::make_shared<CancellationSource>(spec.policy.limits.cancel);
    RunLimits limits;
    limits.deadline = spec.policy.limits.deadline;
    limits.cancel = source->token();
    if (spec.policy.seed_deadline_seconds > 0.0) {
      limits = limits.Tightened(spec.policy.seed_deadline_seconds);
      watchdog.Watch(limits.deadline, source);
    }
    const uint64_t seed = spec.base_seed + 1000003ULL * s;
    Result<DataSplit> made = [&]() {
      TraceSpan data_span("dataset.make");
      return MakeZooDataset(spec.dataset, spec.data_scale, seed);
    }();
    RETURN_IF_ERROR(made.status());
    DataSplit split = std::move(*made);
    RETURN_IF_ERROR(limits.Check("experiment.seed"));
    FrameworkContext context = FrameworkContext::Build(split);
    ActiveDpOptions adp = spec.adp;
    adp.seed = seed ^ 0x9e37;
    adp.user.seed = seed ^ 0x1234;
    adp.policy.retry = spec.policy.retry;
    adp.policy.limits = limits;
    std::unique_ptr<InteractiveFramework> framework =
        MakeFramework(spec.framework, context, adp);
    ProtocolOptions protocol = spec.protocol;
    protocol.policy.limits = limits;
    protocol.policy.retry = spec.policy.retry;
    if (!spec.policy.checkpoint_path.empty()) {
      protocol.policy.checkpoint_path =
          spec.policy.checkpoint_path + "/" + spec.dataset + "-" +
          ToLower(FrameworkDisplayName(spec.framework)) + "-seed" +
          std::to_string(s) + ".ckpt";
    }
    return RunProtocol(*framework, context, protocol);
  };

  std::vector<Result<RunResult>> runs;
  runs.reserve(spec.num_seeds);
  if (spec.num_threads > 1 && spec.num_seeds > 1) {
    runs.assign(spec.num_seeds, Status::Internal("seed not run"));
    ThreadPool pool(std::min(spec.num_threads, spec.num_seeds));
    ParallelFor(&pool, spec.num_seeds,
                [&](int s) { runs[s] = run_seed(s); });
  } else {
    for (int s = 0; s < spec.num_seeds; ++s) runs.push_back(run_seed(s));
  }

  if (tracing) {
    const RunTrace trace = Tracer::Global().Collect();
    Tracer::Global().Disable();
    const std::string stem =
        spec.dataset + "-" + ToLower(FrameworkDisplayName(spec.framework));
    const Status written = WriteRunTrace(trace, spec.policy.trace_dir, stem);
    if (!written.ok()) {
      LOG(Warning) << "trace export failed: " << written.ToString();
    } else {
      LOG(Info) << "trace written to " << spec.policy.trace_dir << "/" << stem
                << ".trace.{jsonl,chrome.json,summary.json}";
    }
  }

  // A seed is excluded when it failed outright or when its budget tripped
  // mid-run (partial curves would bias the point-wise averages).
  RunResult accumulated;
  int used = 0;
  Status first_failure = Status::Ok();
  for (int s = 0; s < spec.num_seeds; ++s) {
    const Status why = runs[s].ok() ? runs[s]->termination : runs[s].status();
    if (!why.ok()) {
      accumulated.excluded_seeds.push_back("seed " + std::to_string(s) +
                                           ": " + why.ToString());
      if (first_failure.ok()) first_failure = why;
      LOG(Warning) << spec.dataset << "/"
                   << FrameworkDisplayName(spec.framework)
                   << " excluding seed " << s << ": " << why.ToString();
      continue;
    }
    const RunResult& run = *runs[s];
    if (used == 0) {
      const std::vector<std::string> excluded =
          std::move(accumulated.excluded_seeds);
      accumulated = run;
      accumulated.excluded_seeds = std::move(excluded);
    } else {
      // Point-wise averaging; a run that stopped early keeps its last value.
      const size_t k =
          std::min(accumulated.budgets.size(), run.budgets.size());
      accumulated.budgets.resize(k);
      accumulated.test_accuracy.resize(k);
      accumulated.label_accuracy.resize(k);
      accumulated.label_coverage.resize(k);
      for (size_t i = 0; i < k; ++i) {
        accumulated.test_accuracy[i] += run.test_accuracy[i];
        accumulated.label_accuracy[i] += run.label_accuracy[i];
        accumulated.label_coverage[i] += run.label_coverage[i];
      }
    }
    ++used;
  }
  if (used == 0) {
    return Status(first_failure.code(),
                  "no seed completed (" + std::to_string(spec.num_seeds) +
                      " excluded); first failure: " + first_failure.message());
  }
  const double inv = 1.0 / used;
  for (auto& v : accumulated.test_accuracy) v *= inv;
  for (auto& v : accumulated.label_accuracy) v *= inv;
  for (auto& v : accumulated.label_coverage) v *= inv;
  accumulated.average_test_accuracy = CurveAverage(accumulated.test_accuracy);
  accumulated.seeds_averaged = used;
  accumulated.termination = Status::Ok();
  return accumulated;
}

}  // namespace activedp
