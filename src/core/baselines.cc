#include "core/baselines.h"

#include <algorithm>
#include <cmath>

#include "math/vector_ops.h"
#include "util/check.h"

namespace activedp {

// ---------------------------------------------------------------- Nemo ----

NemoFramework::NemoFramework(const FrameworkContext& context,
                             BaselineOptions options)
    : context_(&context),
      options_(options),
      user_(context.split->train, options.user),
      sampler_(MakeSampler(SamplerType::kSeu, options.seed ^ 0x77)),
      rng_(options.seed),
      train_matrix_(context.split->train.size()),
      queried_(context.split->train.size(), false),
      label_model_(MakeLabelModel(options.label_model_type)) {}

Status NemoFramework::Step() {
  SamplerContext ctx;
  ctx.train = &context_->split->train;
  ctx.features = &context_->train_features;
  ctx.lm_proba = label_model_ready_ ? &lm_proba_train_ : nullptr;
  ctx.lm_active = label_model_ready_ ? &lm_active_train_ : nullptr;
  ctx.queried = &queried_;
  ctx.num_labeled = 0;
  ctx.lf_space = &user_.lf_space();

  const int query = sampler_->SelectQuery(ctx, rng_);
  if (query < 0)
    return Status::FailedPrecondition("all training instances queried");
  queried_[query] = true;

  std::optional<LfCandidate> response = user_.CreateLf(query);
  if (!response.has_value()) return Status::Ok();
  lfs_.push_back(response->lf);
  train_matrix_.AddColumn(ApplyLf(*response->lf, context_->split->train));

  const Status fit = label_model_->Fit(train_matrix_, context_->num_classes);
  if (!fit.ok()) return Status::Ok();
  label_model_ready_ = true;
  lm_proba_train_.assign(train_matrix_.num_rows(), {});
  lm_active_train_.assign(train_matrix_.num_rows(), false);
  train_matrix_.EnsureRows();
  for (int i = 0; i < train_matrix_.num_rows(); ++i) {
    Result<std::vector<double>> p = label_model_->PredictProbaSparse(
        train_matrix_.ActiveRow(i), train_matrix_.num_cols());
    if (!p.ok()) {
      // Treat an unusable model like a failed fit: no labels this round.
      label_model_ready_ = false;
      return Status::Ok();
    }
    lm_proba_train_[i] = std::move(*p);
    lm_active_train_[i] = train_matrix_.AnyActive(i);
  }
  return Status::Ok();
}

std::vector<std::vector<double>> NemoFramework::CurrentTrainingLabels() {
  const int n = context_->split->train.size();
  std::vector<std::vector<double>> soft(n);
  if (!label_model_ready_) return soft;
  for (int i = 0; i < n; ++i) {
    if (lm_active_train_[i]) soft[i] = lm_proba_train_[i];
  }
  return soft;
}

// ----------------------------------------------------------------- IWS ----

namespace {
constexpr int kIwsSubsampleRows = 200;
constexpr int kIwsMinVerifiedForModel = 6;
constexpr double kIwsExploreProbability = 0.1;
constexpr double kIwsPredictedAccurateThreshold = 0.8;
constexpr int kIwsMaxFinalLfs = 100;
constexpr double kIwsMinCandidateCoverage = 0.01;
// Near-trivial rules (a stump covering most of the data) are not plausible
// LF candidates — IWS's real pools are n-grams with modest coverage.
constexpr double kIwsMaxCandidateCoverage = 0.5;
}  // namespace

IwsFramework::IwsFramework(const FrameworkContext& context,
                           BaselineOptions options)
    : context_(&context),
      options_(options),
      user_(context.split->train, options.user),
      rng_(options.seed),
      label_model_(MakeLabelModel(options.label_model_type)) {
  pool_ = user_.lf_space().AllCandidates(kIwsMinCandidateCoverage);
  std::erase_if(pool_, [](const LfCandidate& c) {
    return c.coverage > kIwsMaxCandidateCoverage;
  });
  const int n = context.split->train.size();
  const int s = std::min(kIwsSubsampleRows, n);
  subsample_rows_ = rng_.SampleWithoutReplacement(n, s);
  pool_outputs_.reserve(pool_.size());
  for (const auto& candidate : pool_) {
    std::vector<int8_t> outputs(s);
    for (int i = 0; i < s; ++i) {
      outputs[i] = static_cast<int8_t>(candidate.lf->Apply(
          context.split->train.example(subsample_rows_[i])));
    }
    pool_outputs_.push_back(std::move(outputs));
  }
  is_verified_.assign(pool_.size(), false);
}

std::vector<double> IwsFramework::CandidateFeatures(int candidate_index) const {
  const auto& outputs = pool_outputs_[candidate_index];
  const int s = static_cast<int>(outputs.size());

  // Majority vote of verified-accurate LFs per subsample row.
  // (Recomputed per call; pools and subsamples are small.)
  std::vector<int> good_vote(s, kAbstain);
  {
    std::vector<std::vector<double>> votes(
        s, std::vector<double>(context_->num_classes, 0.0));
    std::vector<bool> any(s, false);
    for (size_t v = 0; v < verified_.size(); ++v) {
      if (!verified_label_[v]) continue;
      const auto& vout = pool_outputs_[verified_[v]];
      for (int i = 0; i < s; ++i) {
        if (vout[i] == kAbstain) continue;
        votes[i][vout[i]] += 1.0;
        any[i] = true;
      }
    }
    for (int i = 0; i < s; ++i) {
      if (any[i]) good_vote[i] = ArgMax(votes[i]);
    }
  }

  double fires = 0.0, overlap = 0.0, agree = 0.0;
  for (int i = 0; i < s; ++i) {
    if (outputs[i] == kAbstain) continue;
    fires += 1.0;
    if (good_vote[i] != kAbstain) {
      overlap += 1.0;
      if (good_vote[i] == outputs[i]) agree += 1.0;
    }
  }
  const double agreement = overlap > 0.0 ? agree / overlap : 0.5;
  const double overlap_frac = fires > 0.0 ? overlap / fires : 0.0;
  // Class-symmetric features only: using the vote class as a feature makes
  // the acquisition model lock onto whichever class got verified first.
  return {pool_[candidate_index].coverage, agreement, overlap_frac};
}

std::vector<double> IwsFramework::PredictAccurate() const {
  std::vector<double> p(pool_.size(), 0.5);
  int positives = 0, negatives = 0;
  for (bool label : verified_label_) {
    label ? ++positives : ++negatives;
  }
  if (static_cast<int>(verified_.size()) < kIwsMinVerifiedForModel ||
      positives == 0 || negatives == 0) {
    return p;
  }

  std::vector<SparseVector> x;
  std::vector<int> y;
  for (size_t v = 0; v < verified_.size(); ++v) {
    const std::vector<double> features = CandidateFeatures(verified_[v]);
    SparseVector sv;
    for (size_t j = 0; j < features.size(); ++j) {
      sv.PushBack(static_cast<int>(j), features[j]);
    }
    x.push_back(std::move(sv));
    y.push_back(verified_label_[v] ? 1 : 0);
  }
  LogisticRegressionOptions lr = options_.al_lr;
  lr.seed = options_.seed ^ 0x33;
  Result<LogisticRegression> model =
      LogisticRegression::FitHard(x, y, 2, 3, lr);
  if (!model.ok()) return p;

  for (size_t c = 0; c < pool_.size(); ++c) {
    if (is_verified_[c]) continue;
    const std::vector<double> features = CandidateFeatures(static_cast<int>(c));
    SparseVector sv;
    for (size_t j = 0; j < features.size(); ++j) {
      sv.PushBack(static_cast<int>(j), features[j]);
    }
    p[c] = model->PredictProba(sv)[1];
  }
  return p;
}

Status IwsFramework::Step() {
  // Candidates not yet verified.
  std::vector<int> unverified;
  for (size_t c = 0; c < pool_.size(); ++c) {
    if (!is_verified_[c]) unverified.push_back(static_cast<int>(c));
  }
  if (unverified.empty())
    return Status::FailedPrecondition("candidate pool exhausted");

  // Until the acquisition model has signal (or with the ε-greedy explore
  // probability), sample uniformly — the LSE posterior is uninformative
  // before any verifications.
  int positives = 0, negatives = 0;
  for (bool label : verified_label_) {
    label ? ++positives : ++negatives;
  }
  const bool model_ready =
      static_cast<int>(verified_.size()) >= kIwsMinVerifiedForModel &&
      positives > 0 && negatives > 0;
  int chosen;
  if (!model_ready || rng_.Bernoulli(kIwsExploreProbability)) {
    chosen = unverified[rng_.UniformInt(static_cast<int>(unverified.size()))];
  } else {
    const std::vector<double> p = PredictAccurate();
    chosen = unverified.front();
    double best = -1.0;
    for (int c : unverified) {
      const double score = p[c] * pool_[c].coverage;
      if (score > best) {
        best = score;
        chosen = c;
      }
    }
  }

  is_verified_[chosen] = true;
  verified_.push_back(chosen);
  verified_label_.push_back(user_.VerifyLf(pool_[chosen]));
  return Status::Ok();
}

std::vector<std::vector<double>> IwsFramework::CurrentTrainingLabels() {
  const int n = context_->split->train.size();
  std::vector<std::vector<double>> soft(n);

  // IWS-LSE-a final set: all candidates the system predicts accurate —
  // the verified-accurate ones plus confidently-predicted unverified ones.
  // Ranked per vote class and interleaved so the cap cannot collapse the
  // set onto a single class.
  std::vector<std::vector<std::pair<double, int>>> ranked(
      context_->num_classes);  // per class: (confidence, pool index)
  for (size_t v = 0; v < verified_.size(); ++v) {
    if (verified_label_[v]) {
      ranked[pool_[verified_[v]].lf->label()].emplace_back(2.0, verified_[v]);
    }
  }
  const std::vector<double> p = PredictAccurate();
  for (size_t c = 0; c < pool_.size(); ++c) {
    if (!is_verified_[c] && p[c] > kIwsPredictedAccurateThreshold) {
      ranked[pool_[c].lf->label()].emplace_back(p[c], static_cast<int>(c));
    }
  }
  std::vector<LfPtr> final_lfs;
  for (auto& per_class : ranked) {
    std::sort(per_class.begin(), per_class.end(), std::greater<>());
  }
  for (int rank = 0; static_cast<int>(final_lfs.size()) < kIwsMaxFinalLfs;
       ++rank) {
    bool any = false;
    for (const auto& per_class : ranked) {
      if (rank < static_cast<int>(per_class.size())) {
        final_lfs.push_back(pool_[per_class[rank].second].lf);
        any = true;
      }
    }
    if (!any) break;
  }
  if (final_lfs.empty()) return soft;
  const LabelMatrix matrix = ApplyLfs(final_lfs, context_->split->train);
  if (!label_model_->Fit(matrix, context_->num_classes).ok()) return soft;
  matrix.EnsureRows();
  for (int i = 0; i < n; ++i) {
    if (!matrix.AnyActive(i)) continue;
    Result<std::vector<double>> p = label_model_->PredictProbaSparse(
        matrix.ActiveRow(i), matrix.num_cols());
    if (!p.ok()) return std::vector<std::vector<double>>(n);
    soft[i] = std::move(*p);
  }
  return soft;
}

// ----------------------------------------------------------------- RLF ----

RlfFramework::RlfFramework(const FrameworkContext& context,
                           BaselineOptions options)
    : context_(&context),
      options_(options),
      user_(context.split->train, options.user),
      rng_(options.seed),
      train_matrix_(context.split->train.size()),
      lf_queried_(context.split->train.size(), false),
      labeled_(context.split->train.size(), false),
      label_model_(MakeLabelModel(options.label_model_type)) {}

void RlfFramework::ReviseRow(int row, int label) {
  for (int j = 0; j < train_matrix_.num_cols(); ++j) {
    if (train_matrix_.At(row, j) != kAbstain) {
      train_matrix_.Set(row, j, label);
    }
  }
}

Status RlfFramework::Step() {
  const int n = context_->split->train.size();

  // (a) Grow Λ_t with one user-designed LF, mirroring ActiveDP's creation
  // process (supplied to RLF per the protocol, §4.1.3). Query instances for
  // creation are drawn at random.
  std::vector<int> lf_pool;
  for (int i = 0; i < n; ++i) {
    if (!lf_queried_[i]) lf_pool.push_back(i);
  }
  if (!lf_pool.empty()) {
    const int q = lf_pool[rng_.UniformInt(static_cast<int>(lf_pool.size()))];
    lf_queried_[q] = true;
    std::optional<LfCandidate> response = user_.CreateLf(q);
    if (response.has_value()) {
      lfs_.push_back(response->lf);
      train_matrix_.AddColumn(ApplyLf(*response->lf, context_->split->train));
      // Keep the new column consistent with already-corrected rows.
      for (size_t r = 0; r < labeled_rows_.size(); ++r) {
        const int row = labeled_rows_[r];
        if (train_matrix_.At(row, train_matrix_.num_cols() - 1) != kAbstain) {
          train_matrix_.Set(row, train_matrix_.num_cols() - 1,
                            labeled_values_[r]);
        }
      }
    }
  }

  // (b) The iteration's human interaction: label the instance where the
  // label model is most uncertain, then correct LF outputs there.
  int target = -1;
  if (label_model_ready_) {
    double best = -1.0;
    for (int i = 0; i < n; ++i) {
      if (labeled_[i]) continue;
      const double entropy = Entropy(lm_proba_train_[i]);
      if (entropy > best) {
        best = entropy;
        target = i;
      }
    }
  } else {
    std::vector<int> unlabeled;
    for (int i = 0; i < n; ++i) {
      if (!labeled_[i]) unlabeled.push_back(i);
    }
    if (!unlabeled.empty()) {
      target = unlabeled[rng_.UniformInt(static_cast<int>(unlabeled.size()))];
    }
  }
  if (target < 0)
    return Status::FailedPrecondition("all training instances labelled");
  labeled_[target] = true;
  const int truth = user_.LabelInstance(target);
  labeled_rows_.push_back(target);
  labeled_values_.push_back(truth);
  ReviseRow(target, truth);

  // (c) Retrain the label model on the revised matrix.
  if (train_matrix_.num_cols() == 0) return Status::Ok();
  if (!label_model_->Fit(train_matrix_, context_->num_classes).ok()) {
    return Status::Ok();
  }
  label_model_ready_ = true;
  lm_proba_train_.assign(n, {});
  for (int i = 0; i < n; ++i) {
    Result<std::vector<double>> p =
        label_model_->PredictProba(train_matrix_.Row(i));
    if (!p.ok()) {
      label_model_ready_ = false;
      return Status::Ok();
    }
    lm_proba_train_[i] = std::move(*p);
  }
  return Status::Ok();
}

std::vector<std::vector<double>> RlfFramework::CurrentTrainingLabels() {
  // RLF "only leverages label functions to generate training labels"
  // (paper Table 1 / §1): the expert labels act exclusively through the
  // revised LF outputs, so prediction is label-model-only on covered rows.
  const int n = context_->split->train.size();
  std::vector<std::vector<double>> soft(n);
  if (label_model_ready_) {
    for (int i = 0; i < n; ++i) {
      if (train_matrix_.AnyActive(i)) soft[i] = lm_proba_train_[i];
    }
  }
  return soft;
}

// ------------------------------------------------------- Active WeaSuL ----

ActiveWeasulFramework::ActiveWeasulFramework(const FrameworkContext& context,
                                             BaselineOptions options)
    : context_(&context),
      options_(options),
      user_(context.split->train, options.user),
      rng_(options.seed),
      train_matrix_(context.split->train.size()),
      lf_queried_(context.split->train.size(), false),
      labeled_(context.split->train.size(), false) {}

Status ActiveWeasulFramework::Step() {
  const int n = context_->split->train.size();

  // (a) Grow Λ_t with one user-designed LF (supplied by the protocol, as
  // for Revising LF).
  std::vector<int> lf_pool;
  for (int i = 0; i < n; ++i) {
    if (!lf_queried_[i]) lf_pool.push_back(i);
  }
  if (!lf_pool.empty()) {
    const int q = lf_pool[rng_.UniformInt(static_cast<int>(lf_pool.size()))];
    lf_queried_[q] = true;
    std::optional<LfCandidate> response = user_.CreateLf(q);
    if (response.has_value()) {
      lfs_.push_back(response->lf);
      train_matrix_.AddColumn(ApplyLf(*response->lf, context_->split->train));
    }
  }

  // (b) The iteration's human interaction: label the instance the label
  // model is most uncertain about. (Active WeaSuL's maxKL heuristic; we use
  // the entropy of the posterior, which coincides for binary tasks.)
  int target = -1;
  if (label_model_ready_) {
    double best = -1.0;
    for (int i = 0; i < n; ++i) {
      if (labeled_[i]) continue;
      const double entropy = Entropy(lm_proba_train_[i]);
      if (entropy > best) {
        best = entropy;
        target = i;
      }
    }
  } else {
    std::vector<int> unlabeled;
    for (int i = 0; i < n; ++i) {
      if (!labeled_[i]) unlabeled.push_back(i);
    }
    if (!unlabeled.empty()) {
      target = unlabeled[rng_.UniformInt(static_cast<int>(unlabeled.size()))];
    }
  }
  if (target < 0)
    return Status::FailedPrecondition("all training instances labelled");
  labeled_[target] = true;
  labeled_rows_.push_back(target);
  labeled_values_.push_back(user_.LabelInstance(target));

  // (c) Refit the label model with the expert labels steering EM.
  if (train_matrix_.num_cols() == 0) return Status::Ok();
  if (!label_model_
           .FitSemiSupervised(train_matrix_, context_->num_classes,
                              labeled_rows_, labeled_values_)
           .ok()) {
    return Status::Ok();
  }
  label_model_ready_ = true;
  lm_proba_train_.assign(n, {});
  for (int i = 0; i < n; ++i) {
    Result<std::vector<double>> p =
        label_model_.PredictProba(train_matrix_.Row(i));
    if (!p.ok()) {
      label_model_ready_ = false;
      return Status::Ok();
    }
    lm_proba_train_[i] = std::move(*p);
  }
  return Status::Ok();
}

std::vector<std::vector<double>>
ActiveWeasulFramework::CurrentTrainingLabels() {
  // LF-only prediction (Table 1): label-model posteriors on covered rows.
  const int n = context_->split->train.size();
  std::vector<std::vector<double>> soft(n);
  if (label_model_ready_) {
    for (int i = 0; i < n; ++i) {
      if (train_matrix_.AnyActive(i)) soft[i] = lm_proba_train_[i];
    }
  }
  return soft;
}

// ------------------------------------------------------------------ US ----

UncertaintyFramework::UncertaintyFramework(const FrameworkContext& context,
                                           BaselineOptions options)
    : context_(&context),
      options_(options),
      user_(context.split->train, options.user),
      rng_(options.seed),
      queried_(context.split->train.size(), false) {}

void UncertaintyFramework::Retrain() {
  bool has_two_classes = false;
  for (size_t i = 1; i < labels_.size(); ++i) {
    if (labels_[i] != labels_[0]) {
      has_two_classes = true;
      break;
    }
  }
  if (!has_two_classes) return;
  std::vector<SparseVector> x;
  for (int row : labeled_rows_) x.push_back(context_->train_features[row]);
  LogisticRegressionOptions lr = options_.al_lr;
  lr.seed = options_.seed ^ 0x55;
  Result<LogisticRegression> model = LogisticRegression::FitHard(
      x, labels_, context_->num_classes, context_->feature_dim, lr);
  if (!model.ok()) return;
  model_ = std::move(*model);
  proba_train_.assign(context_->train_features.size(), {});
  for (size_t i = 0; i < context_->train_features.size(); ++i) {
    proba_train_[i] = model_->PredictProba(context_->train_features[i]);
  }
}

Status UncertaintyFramework::Step() {
  const int n = context_->split->train.size();
  int target = -1;
  if (model_.has_value()) {
    double best = -1.0;
    for (int i = 0; i < n; ++i) {
      if (queried_[i]) continue;
      const double entropy = Entropy(proba_train_[i]);
      if (entropy > best) {
        best = entropy;
        target = i;
      }
    }
  } else {
    std::vector<int> pool;
    for (int i = 0; i < n; ++i) {
      if (!queried_[i]) pool.push_back(i);
    }
    if (!pool.empty()) {
      target = pool[rng_.UniformInt(static_cast<int>(pool.size()))];
    }
  }
  if (target < 0)
    return Status::FailedPrecondition("all training instances labelled");
  queried_[target] = true;
  labeled_rows_.push_back(target);
  labels_.push_back(user_.LabelInstance(target));
  Retrain();
  return Status::Ok();
}

std::vector<std::vector<double>> UncertaintyFramework::CurrentTrainingLabels() {
  const int n = context_->split->train.size();
  std::vector<std::vector<double>> soft(n);
  for (size_t r = 0; r < labeled_rows_.size(); ++r) {
    std::vector<double> one_hot(context_->num_classes, 0.0);
    one_hot[labels_[r]] = 1.0;
    soft[labeled_rows_[r]] = std::move(one_hot);
  }
  return soft;
}

}  // namespace activedp
