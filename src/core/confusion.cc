#include "core/confusion.h"

#include <algorithm>
#include <cmath>

#include "math/vector_ops.h"
#include "util/check.h"

namespace activedp {

AggregatedLabels ConFusion::Aggregate(
    const std::vector<std::vector<double>>& al_proba,
    const std::vector<std::vector<double>>& lm_proba,
    const std::vector<bool>& lm_active, double threshold) {
  const size_t n = lm_proba.size();
  CHECK_EQ(al_proba.size(), n);
  CHECK_EQ(lm_active.size(), n);

  AggregatedLabels out;
  out.threshold = threshold;
  out.soft.resize(n);
  out.hard.assign(n, kAbstain);
  out.source.assign(n, LabelSource::kRejected);
  int covered = 0;
  for (size_t i = 0; i < n; ++i) {
    const bool has_al = !al_proba[i].empty();
    if (has_al && Max(al_proba[i]) >= threshold) {
      out.soft[i] = al_proba[i];
      out.source[i] = LabelSource::kActiveLearning;
    } else if (lm_active[i]) {
      out.soft[i] = lm_proba[i];
      out.source[i] = LabelSource::kLabelModel;
    } else {
      continue;  // rejected (Eq. 1 third case)
    }
    out.hard[i] = ArgMax(out.soft[i]);
    ++covered;
  }
  out.coverage = n == 0 ? 0.0 : static_cast<double>(covered) / n;
  return out;
}

double ConFusion::TuneThreshold(
    const std::vector<std::vector<double>>& al_proba_valid,
    const std::vector<std::vector<double>>& lm_proba_valid,
    const std::vector<bool>& lm_active_valid,
    const std::vector<int>& valid_labels, ConFusionObjective objective) {
  const size_t n = lm_proba_valid.size();
  CHECK_EQ(al_proba_valid.size(), n);
  CHECK_EQ(lm_active_valid.size(), n);
  CHECK_EQ(valid_labels.size(), n);

  // Per-row facts: AL confidence (-1 when no AL prediction), whether each
  // model would be correct, and LM activity.
  struct RowInfo {
    double confidence;
    bool al_correct;
    bool lm_active;
    bool lm_correct;
  };
  std::vector<RowInfo> rows;
  rows.reserve(n);
  int al_count = 0, al_correct = 0;
  int lm_count = 0, lm_correct = 0;  // LM stats for rows NOT in the AL group
  for (size_t i = 0; i < n; ++i) {
    RowInfo info;
    info.confidence = al_proba_valid[i].empty() ? -1.0 : Max(al_proba_valid[i]);
    info.al_correct = !al_proba_valid[i].empty() &&
                      ArgMax(al_proba_valid[i]) == valid_labels[i];
    info.lm_active = lm_active_valid[i];
    info.lm_correct =
        lm_active_valid[i] && ArgMax(lm_proba_valid[i]) == valid_labels[i];
    if (info.confidence >= 0.0) {
      // At τ = 0 every row with an AL prediction is in the AL group.
      ++al_count;
      if (info.al_correct) ++al_correct;
    } else {
      if (info.lm_active) ++lm_count;
      if (info.lm_correct) ++lm_correct;
    }
    rows.push_back(info);
  }
  std::sort(rows.begin(), rows.end(),
            [](const RowInfo& a, const RowInfo& b) {
              return a.confidence < b.confidence;
            });

  // Candidate thresholds: {0} ∪ unique confidences ∪ {1}, ascending.
  std::vector<double> candidates;
  candidates.push_back(0.0);
  for (const auto& r : rows) {
    if (r.confidence >= 0.0 &&
        (candidates.empty() || candidates.back() != r.confidence)) {
      candidates.push_back(r.confidence);
    }
  }
  if (candidates.back() != 1.0) candidates.push_back(1.0);

  double best_tau = 0.0;
  double best_objective = -1.0;
  double best_coverage = -1.0;
  size_t next_row = 0;  // first row (by ascending confidence) still in AL group
  while (next_row < rows.size() && rows[next_row].confidence < 0.0) ++next_row;

  for (double tau : candidates) {
    // Move rows with confidence < tau from the AL group to the LM group.
    while (next_row < rows.size() && rows[next_row].confidence < tau) {
      const RowInfo& r = rows[next_row];
      --al_count;
      if (r.al_correct) --al_correct;
      if (r.lm_active) ++lm_count;
      if (r.lm_correct) ++lm_correct;
      ++next_row;
    }
    const int covered = al_count + lm_count;
    const double coverage =
        n == 0 ? 0.0 : static_cast<double>(covered) / n;
    const double accuracy =
        covered == 0 ? 0.0
                     : static_cast<double>(al_correct + lm_correct) / covered;
    const double score =
        objective == ConFusionObjective::kAccuracy ? accuracy : coverage;
    if (score > best_objective + 1e-12 ||
        (std::fabs(score - best_objective) <= 1e-12 &&
         coverage > best_coverage + 1e-12)) {
      best_objective = score;
      best_coverage = coverage;
      best_tau = tau;
    }
  }
  return best_tau;
}

}  // namespace activedp
