#ifndef ACTIVEDP_CORE_ACTIVEDP_H_
#define ACTIVEDP_CORE_ACTIVEDP_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "active/sampler.h"
#include "core/confusion.h"
#include "core/framework.h"
#include "core/label_pick.h"
#include "core/recovery.h"
#include "core/run_policy.h"
#include "core/session_io.h"
#include "labelmodel/label_model.h"
#include "lf/oracle.h"
#include "ml/linear_model.h"
#include "util/retry.h"

namespace activedp {

/// Configuration of the ActiveDP pipeline. The two `use_*` switches realize
/// the ablated variants of Table 3: Baseline = neither, LabelPick-only,
/// ConFusion-only, full ActiveDP = both.
struct ActiveDpOptions {
  SamplerType sampler_type = SamplerType::kAdp;
  LabelModelType label_model_type = LabelModelType::kMetal;
  /// ADP trade-off factor α (Eq. 2); < 0 selects the paper's per-task
  /// default: 0.5 for text, 0.99 for tabular (§3.3).
  double adp_alpha = -1.0;
  bool use_label_pick = true;
  bool use_confusion = true;
  ConFusionObjective tune_objective = ConFusionObjective::kAccuracy;
  SimulatedUserOptions user;
  LogisticRegressionOptions al_lr;
  LabelPickOptions label_pick;
  /// The AL model is trained once the pseudo-labelled set has at least this
  /// many instances spanning at least two classes.
  int min_labeled_for_al = 4;
  uint64_t seed = 42;
  /// Shared robustness policy (see core/run_policy.h). The pipeline
  /// consumes `policy.retry` (transient-failure sites "glasso.solve",
  /// "label_model.fit", "al_model.fit") and `policy.limits` (checked at
  /// each Step() and inside solver loops); the sink/path/trace fields are
  /// ignored here — ActiveDp keeps its own RetryLog/RecoveryLog
  /// (retry_log() / recovery()).
  RunPolicy policy;

  ActiveDpOptions() {
    // LabelPick runs every iteration, so the pipeline defaults to the
    // Meinshausen–Bühlmann neighbourhood-selection blanket (a single lasso;
    // identical blanket semantics) instead of the full graphical lasso,
    // which is cubic per refresh. Switch back via
    // label_pick.blanket.method = BlanketMethod::kGraphicalLasso
    // (compared in bench_micro_components).
    label_pick.blanket.method = BlanketMethod::kNeighborhoodSelection;
    // The blanket step should only drop clearly redundant LFs: every LF the
    // label model loses also loses its coverage (abstain semantics), so an
    // aggressive penalty starves the label model. With this penalty the
    // blanket is a near-no-op on tabular stump sets — matching the paper's
    // Table 3, where LabelPick leaves Occupancy/Census unchanged — and only
    // prunes strongly dependent keyword LFs on text.
    label_pick.blanket.penalty = 0.01;
  }
};

/// The ActiveDP framework (§3, Fig. 1). Training phase: each Step() asks the
/// ADP sampler for a query instance, the simulated user returns an LF, the
/// query/LF pair extends the pseudo-labelled set, and both the
/// active-learning model and the (LabelPick-filtered) label model are
/// retrained. Inference phase: CurrentTrainingLabels() tunes the ConFusion
/// threshold on the validation split and aggregates both models' predictions
/// over the training set (Eq. 1).
class ActiveDp : public InteractiveFramework {
 public:
  ActiveDp(const FrameworkContext& context, ActiveDpOptions options);

  std::string name() const override { return "activedp"; }
  Status Step() override;
  std::vector<std::vector<double>> CurrentTrainingLabels() override;

  /// Resumes a persisted session (see core/session_io.h): replays the saved
  /// LFs and query/pseudo-label pairs into a fresh pipeline and retrains
  /// both models once. Must be called before the first Step(). Entries with
  /// query index -1 (hand-written LFs) contribute no pseudo-label.
  Status Restore(const SessionState& state);

  /// Snapshot of the current session for SaveSession().
  SessionState Snapshot() const;

  // --- Introspection (tests, examples, diagnostics) ---
  const std::vector<LfPtr>& lfs() const { return lfs_; }
  /// Indices (into lfs()) selected by LabelPick for the current label model.
  const std::vector<int>& selected_lfs() const { return selected_; }
  const std::vector<int>& query_indices() const { return query_indices_; }
  const std::vector<int>& pseudo_labels() const { return pseudo_labels_; }
  bool has_al_model() const { return al_model_.has_value(); }
  /// The current active-learning model, or null before one is trained.
  const LogisticRegression* al_model() const {
    return al_model_.has_value() ? &*al_model_ : nullptr;
  }
  bool has_label_model() const { return label_model_ready_; }
  /// The label model currently serving predictions (the configured model,
  /// or the majority-vote fallback after a degradation), or null before
  /// one is trained. Only meaningful while has_label_model(); snapshot
  /// export (serve/snapshot_export.h) reads its fitted parameters.
  const LabelModel* label_model() const {
    return label_model_ready_ ? current_label_model() : nullptr;
  }
  /// τ chosen at the most recent CurrentTrainingLabels() call.
  double last_threshold() const { return last_threshold_; }
  int last_query() const { return last_query_; }
  const Sampler& sampler() const { return *sampler_; }
  /// Structured record of every degradation this run survived (label-model
  /// fallback to majority vote, AL-model training failures, blanket
  /// failures). Empty on a healthy run.
  const RecoveryLog& recovery() const { return recovery_; }
  /// Structured record of every retry the run's transient-failure sites
  /// took before degrading (or recovering). Empty on a healthy run.
  const RetryLog& retry_log() const { return retry_log_; }
  /// True while the label model in use is the majority-vote fallback rather
  /// than the configured model.
  bool using_fallback_label_model() const {
    return fallback_label_model_ != nullptr;
  }

 private:
  void RetrainAlModel();
  void RetrainLabelModel();
  /// The label model currently serving predictions (configured model, or
  /// the majority-vote fallback after a degradation).
  const LabelModel* current_label_model() const {
    return fallback_label_model_ != nullptr ? fallback_label_model_.get()
                                            : label_model_.get();
  }
  /// Label-model accuracy on the validation split using only `columns`.
  double ValidationLabelModelAccuracy(const std::vector<int>& columns) const;
  SamplerContext BuildSamplerContext() const;
  /// AL probabilities for a feature set (empty inner vectors without model).
  std::vector<std::vector<double>> AlProba(
      const std::vector<SparseVector>& features) const;
  /// Label-model probabilities + activity over a weak-label matrix
  /// restricted to the selected LFs. Fails (instead of propagating garbage)
  /// when the model emits an invalid distribution.
  Status LabelModelPredictions(const LabelMatrix& matrix,
                               std::vector<std::vector<double>>* proba,
                               std::vector<bool>* active) const;

  const FrameworkContext* context_;
  ActiveDpOptions options_;
  SimulatedUser user_;
  std::unique_ptr<Sampler> sampler_;
  Rng rng_;
  double alpha_;

  std::vector<LfPtr> lfs_;
  LabelMatrix train_matrix_;
  LabelMatrix valid_matrix_;
  std::vector<int> query_indices_;
  std::vector<int> pseudo_labels_;
  std::vector<bool> queried_;
  int last_query_ = -1;

  std::optional<LogisticRegression> al_model_;
  std::unique_ptr<LabelModel> label_model_;
  /// Non-null while degraded to majority-vote aggregation (see recovery()).
  std::unique_ptr<LabelModel> fallback_label_model_;
  bool label_model_ready_ = false;
  std::vector<int> selected_;
  RecoveryLog recovery_;
  RetryLog retry_log_;
  /// Shared with the blanket step via options_.label_pick.blanket.retrier,
  /// so glasso retries draw from the same per-site budget and log.
  Retrier retrier_;

  // Caches refreshed after each retraining.
  std::vector<std::vector<double>> al_proba_train_;
  std::vector<std::vector<double>> lm_proba_train_;
  std::vector<bool> lm_active_train_;
  double last_threshold_ = 0.0;
};

}  // namespace activedp

#endif  // ACTIVEDP_CORE_ACTIVEDP_H_
