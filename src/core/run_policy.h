#ifndef ACTIVEDP_CORE_RUN_POLICY_H_
#define ACTIVEDP_CORE_RUN_POLICY_H_

#include <string>

#include "core/recovery.h"
#include "util/deadline.h"
#include "util/retry.h"

namespace activedp {

/// The robustness/observability knobs shared by every public entry point —
/// one struct instead of the same five fields copy-pasted across
/// `ProtocolOptions`, `ExperimentSpec`, and `ActiveDpOptions`. Each entry
/// point embeds a RunPolicy by value and consumes the subset that applies
/// at its level (documented per field); the unused fields are ignored, so a
/// policy built once can be handed to all three without translation.
struct RunPolicy {
  /// Time budget and cancellation for the run. Checked cooperatively at
  /// every protocol iteration, pipeline Step(), and solver loop.
  RunLimits limits;
  /// Retry-before-degrade policy for the transient-failure sites
  /// ("glasso.solve", "label_model.fit", "al_model.fit",
  /// "checkpoint.save"); see util/retry.h.
  RetryPolicy retry;
  /// Optional sink for retry events; not owned. Consumed by RunProtocol
  /// (the "checkpoint.save" site). ActiveDp keeps its own per-run
  /// RetryLog (ActiveDp::retry_log()) and ignores this sink.
  RetryLog* retry_log = nullptr;
  /// Optional sink for degradations (unusable checkpoint at resume,
  /// checkpoint save giving up after retries, end-model training failure);
  /// not owned. Consumed by RunProtocol; ActiveDp keeps its own
  /// RecoveryLog (ActiveDp::recovery()) and ignores this sink.
  RecoveryLog* recovery = nullptr;
  /// Checkpoint location. At the protocol level this is a *file*: when
  /// non-empty, RunProtocol persists a RunCheckpoint here after every
  /// evaluation (atomic write + checksum) and resumes from it on start. At
  /// the experiment level this is a *directory*: each seed checkpoints to
  /// `<dir>/<dataset>-<framework>-seed<k>.ckpt`. Ignored by ActiveDp.
  std::string checkpoint_path;
  /// Per-seed wall-clock budget in seconds (<= 0 = unlimited). Consumed by
  /// RunExperiment only: each seed runs under `limits.deadline` tightened
  /// by this, enforced both cooperatively and by a watchdog thread that
  /// cancels the seed's token once the deadline passes.
  double seed_deadline_seconds = 0.0;
  /// When non-empty, RunExperiment runs with the global Tracer armed and
  /// writes the merged RunTrace (JSONL + Chrome trace_event JSON +
  /// summary, see util/trace.h) to `<trace_dir>/<dataset>-<framework>
  /// .trace.*`. Ignored by RunProtocol and ActiveDp.
  std::string trace_dir;
};

}  // namespace activedp

#endif  // ACTIVEDP_CORE_RUN_POLICY_H_
