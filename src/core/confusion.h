#ifndef ACTIVEDP_CORE_CONFUSION_H_
#define ACTIVEDP_CORE_CONFUSION_H_

#include <vector>

#include "lf/label_function.h"

namespace activedp {

/// Which objective the dynamic threshold tuning maximizes on the validation
/// set. The paper uses accuracy (§3.2) and discusses why coverage-maximizing
/// tuning collapses to τ=0 (pure active learning); both are provided.
enum class ConFusionObjective { kAccuracy, kCoverage };

/// Where each aggregated label came from.
enum class LabelSource { kActiveLearning, kLabelModel, kRejected };

/// Result of aggregating one dataset's predictions with Eq. 1.
struct AggregatedLabels {
  /// Soft label per row; empty vector when the row is rejected.
  std::vector<std::vector<double>> soft;
  /// argmax of soft, or kAbstain when rejected.
  std::vector<int> hard;
  std::vector<LabelSource> source;
  double threshold = 0.0;
  double coverage = 0.0;
};

/// ConFusion (§3.2): confidence-based aggregation of the active-learning
/// model and the label model.
class ConFusion {
 public:
  /// Eq. 1: follow f_a when its confidence max(f_a(x)) >= threshold; else
  /// follow f_l where at least one selected LF fires; else reject.
  /// `al_proba[i]` may be empty (no AL model -> pure label model);
  /// `lm_active[i]` false means every selected LF abstains on row i.
  static AggregatedLabels Aggregate(
      const std::vector<std::vector<double>>& al_proba,
      const std::vector<std::vector<double>>& lm_proba,
      const std::vector<bool>& lm_active, double threshold);

  /// Dynamic threshold tuning (§3.2): evaluates every candidate threshold in
  /// {0} ∪ {unique validation confidences} ∪ {1} and returns the one
  /// maximizing the chosen objective of the aggregated labels on the
  /// validation set (accuracy is computed over non-rejected rows only).
  /// Ties prefer higher coverage, then the smaller threshold.
  static double TuneThreshold(
      const std::vector<std::vector<double>>& al_proba_valid,
      const std::vector<std::vector<double>>& lm_proba_valid,
      const std::vector<bool>& lm_active_valid,
      const std::vector<int>& valid_labels,
      ConFusionObjective objective = ConFusionObjective::kAccuracy);
};

}  // namespace activedp

#endif  // ACTIVEDP_CORE_CONFUSION_H_
