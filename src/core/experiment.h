#ifndef ACTIVEDP_CORE_EXPERIMENT_H_
#define ACTIVEDP_CORE_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/activedp.h"
#include "core/baselines.h"
#include "core/end_model.h"
#include "core/framework.h"
#include "util/deadline.h"
#include "util/result.h"
#include "util/retry.h"

namespace activedp {

/// kActiveWeasul is an extension beyond the paper's Figure-3 line-up,
/// completing its Table 1 (see core/baselines.h).
enum class FrameworkType { kActiveDp, kNemo, kIws, kRlf, kUs, kActiveWeasul };

std::string FrameworkDisplayName(FrameworkType type);

/// Parses "activedp" / "nemo" / "iws" / "rlf" / "us"; defaults to kActiveDp.
FrameworkType ParseFrameworkType(const std::string& name);

/// Instantiates a framework over the shared context. ActiveDP consumes
/// `adp_options`; baselines consume the shared fields mirrored into
/// BaselineOptions (user simulation, label model, AL hyper-parameters).
std::unique_ptr<InteractiveFramework> MakeFramework(
    FrameworkType type, const FrameworkContext& context,
    const ActiveDpOptions& adp_options);

/// The paper's evaluation protocol (§4.1.3): run `iterations` interactions,
/// every `eval_every` iterations train the downstream model on the
/// framework's current labels and record test accuracy.
struct ProtocolOptions {
  int iterations = 100;  // paper: 300
  int eval_every = 10;
  EndModelOptions end_model;
  /// When non-empty, RunProtocol persists a RunCheckpoint here after every
  /// evaluation (atomic write + checksum, see core/run_checkpoint.h) and, on
  /// start, resumes from it if present: iterations up to the checkpoint are
  /// replayed deterministically with their recorded evaluations reused, so
  /// the final RunResult is bitwise-identical to an uninterrupted run. A
  /// corrupt or truncated checkpoint is logged and ignored (fresh start).
  std::string checkpoint_path;
  /// Budget for the whole run: checked before every iteration; callers who
  /// also want solver-level enforcement propagate the same limits into the
  /// framework (ActiveDpOptions.limits). A trip ends the run cleanly with
  /// the evaluations finished so far and RunResult::termination set.
  RunLimits limits;
  /// Retry policy for the protocol-level fault site "checkpoint.save".
  RetryPolicy retry;
  /// Optional sink for the protocol's retry events; not owned.
  RetryLog* retry_log = nullptr;
  /// Optional sink for protocol-level degradations (unusable checkpoint at
  /// resume, checkpoint save giving up after retries, end-model training
  /// failure); not owned. Chaos runs use it to account for injected faults.
  RecoveryLog* recovery = nullptr;
};

struct RunResult {
  std::vector<int> budgets;           // queries consumed at each checkpoint
  std::vector<double> test_accuracy;  // downstream test accuracy
  std::vector<double> label_accuracy; // generated-label accuracy (diagnostic)
  std::vector<double> label_coverage; // generated-label coverage (diagnostic)
  /// Mean of test_accuracy — the paper's summary metric (area under the
  /// performance curve).
  double average_test_accuracy = 0.0;
  /// OK when the protocol ran to its natural end; DeadlineExceeded /
  /// Cancelled when the run's budget tripped mid-protocol (the curves then
  /// hold the evaluations completed before the trip). Not persisted in
  /// checkpoints — a resumed run re-derives its own termination.
  Status termination = Status::Ok();
  /// Aggregated results only (RunExperiment): seeds excluded from the
  /// averaged curves, as "seed <k>: <why>" lines. Empty when every seed
  /// contributed.
  std::vector<std::string> excluded_seeds;
  /// Aggregated results only: how many seeds the curves average over.
  int seeds_averaged = 0;
};

RunResult RunProtocol(InteractiveFramework& framework,
                      const FrameworkContext& context,
                      const ProtocolOptions& options);

/// Full experiment spec for one (dataset, framework) cell averaged over
/// seeds, regenerating the dataset per seed as the paper does.
struct ExperimentSpec {
  std::string dataset;
  FrameworkType framework = FrameworkType::kActiveDp;
  ActiveDpOptions adp;
  ProtocolOptions protocol;
  double data_scale = 0.1;  // fraction of paper's Table 2 sizes
  int num_seeds = 2;        // paper: 5
  uint64_t base_seed = 1;
  /// Seeds are independent; > 1 runs them on a thread pool. Results are
  /// identical to the serial run (every seed is self-contained and
  /// deterministic).
  int num_threads = 1;
  /// When > 0, reconfigures the process-wide compute pool (see
  /// util/thread_pool.h: ComputePool) that the data-parallel stages inside
  /// each seed draw from: LF application, TF-IDF, matrix products,
  /// label-model fits, graphical lasso. Stage results are bitwise
  /// independent of this knob; 0 leaves the current configuration alone.
  /// Note the two axes multiply — `num_threads` seeds each fanning out onto
  /// `compute_threads` workers oversubscribes small machines.
  int compute_threads = 0;
  /// When non-empty, each seed checkpoints its run to
  /// `<checkpoint_dir>/<dataset>-<framework>-seed<k>.ckpt` so a killed
  /// experiment resumes at the last evaluated budget per seed.
  std::string checkpoint_dir;
  /// Experiment-wide budget and cancellation. Each seed derives its own
  /// token from `limits.cancel`, so cancelling the experiment cancels every
  /// in-flight seed.
  RunLimits limits;
  /// Per-seed wall-clock budget in seconds (<= 0 = unlimited). Each seed
  /// runs under its own deadline — `limits.deadline` tightened by this —
  /// enforced both cooperatively (solver loops, protocol iterations) and by
  /// a watchdog thread that cancels the seed's token once the deadline
  /// passes, so a wedged seed cannot hold its ThreadPool slot forever.
  double seed_deadline_seconds = 0.0;
  /// Retry-before-degrade policy shared by every seed's pipeline.
  RetryPolicy retry;
  /// When non-empty, the experiment runs with the global Tracer armed and
  /// writes the merged RunTrace (JSONL + Chrome trace_event JSON + summary,
  /// see util/trace.h) to `<trace_dir>/<dataset>-<framework>.trace.*`. Each
  /// seed records on its own track, so the files are identical between
  /// same-seed runs modulo timestamp fields. Leaves any tracer the caller
  /// armed beforehand untouched when empty.
  std::string trace_dir;
};

/// Runs the spec for each seed and returns the point-wise averaged curves.
/// Seed isolation: a seed that fails outright, is cancelled, or overruns
/// its deadline is recorded in `excluded_seeds` and left out of the
/// averages instead of failing the experiment; only when no seed completes
/// does RunExperiment return the first failure.
Result<RunResult> RunExperiment(const ExperimentSpec& spec);

}  // namespace activedp

#endif  // ACTIVEDP_CORE_EXPERIMENT_H_
