#ifndef ACTIVEDP_CORE_EXPERIMENT_H_
#define ACTIVEDP_CORE_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/activedp.h"
#include "core/baselines.h"
#include "core/end_model.h"
#include "core/framework.h"
#include "core/run_policy.h"
#include "util/deadline.h"
#include "util/result.h"
#include "util/retry.h"

namespace activedp {

/// kActiveWeasul is an extension beyond the paper's Figure-3 line-up,
/// completing its Table 1 (see core/baselines.h).
enum class FrameworkType { kActiveDp, kNemo, kIws, kRlf, kUs, kActiveWeasul };

std::string FrameworkDisplayName(FrameworkType type);

/// Parses a framework name ("activedp" / "nemo" / "iws" / "rlf" /
/// "revisinglf" / "us" / "uncertainty" / "aw" / "active-weasul" /
/// "activeweasul", case-insensitive). An unrecognized name is an
/// InvalidArgument error listing the accepted spellings — there is no
/// silent default, so a typoed `--framework` flag fails loudly instead of
/// quietly benchmarking ActiveDP.
Result<FrameworkType> ParseFrameworkType(const std::string& name);

/// Instantiates a framework over the shared context. ActiveDP consumes
/// `adp_options`; baselines consume the shared fields mirrored into
/// BaselineOptions (user simulation, label model, AL hyper-parameters).
std::unique_ptr<InteractiveFramework> MakeFramework(
    FrameworkType type, const FrameworkContext& context,
    const ActiveDpOptions& adp_options);

/// The paper's evaluation protocol (§4.1.3): run `iterations` interactions,
/// every `eval_every` iterations train the downstream model on the
/// framework's current labels and record test accuracy.
struct ProtocolOptions {
  int iterations = 100;  // paper: 300
  int eval_every = 10;
  EndModelOptions end_model;
  /// Shared robustness/observability policy (see core/run_policy.h).
  /// RunProtocol consumes `policy.checkpoint_path` (a checkpoint *file*:
  /// persisted after every evaluation, resumed from on start, corrupt or
  /// truncated files logged and ignored), `policy.limits` (checked before
  /// every iteration; callers who also want solver-level enforcement
  /// propagate the same limits into the framework via
  /// ActiveDpOptions.policy), `policy.retry` (the "checkpoint.save" fault
  /// site) and the `policy.retry_log` / `policy.recovery` sinks.
  RunPolicy policy;
};

struct RunResult {
  std::vector<int> budgets;           // queries consumed at each checkpoint
  std::vector<double> test_accuracy;  // downstream test accuracy
  std::vector<double> label_accuracy; // generated-label accuracy (diagnostic)
  std::vector<double> label_coverage; // generated-label coverage (diagnostic)
  /// Mean of test_accuracy — the paper's summary metric (area under the
  /// performance curve).
  double average_test_accuracy = 0.0;
  /// OK when the protocol ran to its natural end; DeadlineExceeded /
  /// Cancelled when the run's budget tripped mid-protocol (the curves then
  /// hold the evaluations completed before the trip). Not persisted in
  /// checkpoints — a resumed run re-derives its own termination.
  Status termination = Status::Ok();
  /// Aggregated results only (RunExperiment): seeds excluded from the
  /// averaged curves, as "seed <k>: <why>" lines. Empty when every seed
  /// contributed.
  std::vector<std::string> excluded_seeds;
  /// Aggregated results only: how many seeds the curves average over.
  int seeds_averaged = 0;
};

RunResult RunProtocol(InteractiveFramework& framework,
                      const FrameworkContext& context,
                      const ProtocolOptions& options);

/// Full experiment spec for one (dataset, framework) cell averaged over
/// seeds, regenerating the dataset per seed as the paper does.
struct ExperimentSpec {
  std::string dataset;
  FrameworkType framework = FrameworkType::kActiveDp;
  ActiveDpOptions adp;
  ProtocolOptions protocol;
  double data_scale = 0.1;  // fraction of paper's Table 2 sizes
  int num_seeds = 2;        // paper: 5
  uint64_t base_seed = 1;
  /// Seeds are independent; > 1 runs them on a thread pool. Results are
  /// identical to the serial run (every seed is self-contained and
  /// deterministic).
  int num_threads = 1;
  /// When > 0, reconfigures the process-wide compute pool (see
  /// util/thread_pool.h: ComputePool) that the data-parallel stages inside
  /// each seed draw from: LF application, TF-IDF, matrix products,
  /// label-model fits, graphical lasso. Stage results are bitwise
  /// independent of this knob; 0 leaves the current configuration alone.
  /// Note the two axes multiply — `num_threads` seeds each fanning out onto
  /// `compute_threads` workers oversubscribes small machines.
  int compute_threads = 0;
  /// Shared robustness/observability policy (see core/run_policy.h). At
  /// this level `policy.checkpoint_path` is a *directory*: each seed
  /// checkpoints its run to `<dir>/<dataset>-<framework>-seed<k>.ckpt` so a
  /// killed experiment resumes at the last evaluated budget per seed.
  /// `policy.limits` is the experiment-wide budget and cancellation (each
  /// seed derives its own token from `limits.cancel`, so cancelling the
  /// experiment cancels every in-flight seed), tightened per seed by
  /// `policy.seed_deadline_seconds` under a watchdog. `policy.retry` is
  /// shared by every seed's pipeline, and `policy.trace_dir` arms the
  /// global tracer for the whole experiment (each seed records on its own
  /// track, so the files are identical between same-seed runs modulo
  /// timestamp fields; an empty trace_dir leaves any tracer the caller
  /// armed beforehand untouched).
  RunPolicy policy;
};

/// Runs the spec for each seed and returns the point-wise averaged curves.
/// Seed isolation: a seed that fails outright, is cancelled, or overruns
/// its deadline is recorded in `excluded_seeds` and left out of the
/// averages instead of failing the experiment; only when no seed completes
/// does RunExperiment return the first failure.
Result<RunResult> RunExperiment(const ExperimentSpec& spec);

}  // namespace activedp

#endif  // ACTIVEDP_CORE_EXPERIMENT_H_
