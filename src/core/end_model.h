#ifndef ACTIVEDP_CORE_END_MODEL_H_
#define ACTIVEDP_CORE_END_MODEL_H_

#include <vector>

#include "data/example.h"
#include "ml/linear_model.h"
#include "util/result.h"

namespace activedp {

struct EndModelOptions {
  LogisticRegressionOptions lr;
};

/// Trains the downstream model (§4.1.3: logistic regression on TF-IDF /
/// standardized features) on the rows that received an aggregated label.
/// `soft_labels[i]` empty means row i was rejected and is discarded, exactly
/// as the paper discards uncovered instances.
Result<LogisticRegression> TrainEndModel(
    const std::vector<SparseVector>& features,
    const std::vector<std::vector<double>>& soft_labels, int num_classes,
    int dim, const EndModelOptions& options);

/// Test-set classification accuracy of a trained model.
double EvaluateAccuracy(const LogisticRegression& model,
                        const std::vector<SparseVector>& features,
                        const std::vector<int>& labels);

}  // namespace activedp

#endif  // ACTIVEDP_CORE_END_MODEL_H_
