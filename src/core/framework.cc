#include "core/framework.h"

#include "math/vector_ops.h"
#include "util/check.h"

namespace activedp {

FrameworkContext FrameworkContext::Build(const DataSplit& split) {
  FrameworkContext context;
  context.split = &split;
  context.featurizer = MakeFeaturizer(split.train);
  context.train_features = FeaturizeAll(*context.featurizer, split.train);
  context.valid_features = FeaturizeAll(*context.featurizer, split.valid);
  context.test_features = FeaturizeAll(*context.featurizer, split.test);
  context.valid_labels = split.valid.Labels();
  context.test_labels = split.test.Labels();
  context.num_classes = split.train.meta().num_classes;
  context.feature_dim = context.featurizer->dim();
  return context;
}

LabelQuality MeasureLabelQuality(
    const std::vector<std::vector<double>>& soft_labels,
    const Dataset& train) {
  CHECK_EQ(static_cast<int>(soft_labels.size()), train.size());
  LabelQuality quality;
  int covered = 0, correct = 0;
  for (int i = 0; i < train.size(); ++i) {
    if (soft_labels[i].empty()) continue;
    ++covered;
    if (ArgMax(soft_labels[i]) == train.example(i).label) ++correct;
  }
  if (train.size() > 0) {
    quality.coverage = static_cast<double>(covered) / train.size();
  }
  if (covered > 0) {
    quality.accuracy = static_cast<double>(correct) / covered;
  }
  return quality;
}

}  // namespace activedp
