#ifndef ACTIVEDP_CORE_FRAMEWORK_H_
#define ACTIVEDP_CORE_FRAMEWORK_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/example.h"
#include "ml/featurizer.h"
#include "util/status.h"

namespace activedp {

/// Everything an interactive labelling framework needs about a dataset,
/// built once per (dataset, seed) and shared by every framework under
/// comparison: the split, the fitted featurizer, and featurized train /
/// valid / test sets. Validation labels are available (the paper's holdout
/// set is used for threshold tuning and LF pruning); training ground truth
/// is reserved for the simulated user and diagnostics.
struct FrameworkContext {
  const DataSplit* split = nullptr;
  std::unique_ptr<Featurizer> featurizer;
  std::vector<SparseVector> train_features;
  std::vector<SparseVector> valid_features;
  std::vector<SparseVector> test_features;
  std::vector<int> valid_labels;
  std::vector<int> test_labels;
  int num_classes = 2;
  int feature_dim = 0;

  static FrameworkContext Build(const DataSplit& split);
};

/// Quality of generated training labels measured against ground truth
/// (diagnostic; frameworks never see these numbers).
struct LabelQuality {
  double accuracy = 0.0;
  double coverage = 0.0;
};

/// An interactive data-labelling framework under the paper's protocol
/// (§4.1.3): each Step() consumes exactly one unit of human supervision
/// (one LF designed, one LF verified, or one instance labelled, depending
/// on the framework), and CurrentTrainingLabels() yields the training
/// labels the framework would hand to the downstream model right now.
class InteractiveFramework {
 public:
  virtual ~InteractiveFramework() = default;

  virtual std::string name() const = 0;

  /// Runs one interaction iteration. FailedPrecondition when the framework
  /// has exhausted every possible query.
  virtual Status Step() = 0;

  /// Soft training label per training row; an empty vector means the row is
  /// rejected/uncovered and must be discarded by the downstream trainer.
  virtual std::vector<std::vector<double>> CurrentTrainingLabels() = 0;
};

/// Accuracy/coverage of soft labels against the training ground truth.
LabelQuality MeasureLabelQuality(
    const std::vector<std::vector<double>>& soft_labels,
    const Dataset& train);

}  // namespace activedp

#endif  // ACTIVEDP_CORE_FRAMEWORK_H_
