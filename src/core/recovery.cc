#include "core/recovery.h"

#include <sstream>

#include "util/logging.h"

namespace activedp {

void RecoveryLog::Record(std::string stage, std::string reason,
                         std::string fallback) {
  // A persistent failure (e.g. a misconfigured label model failing every
  // retrain the same way) is one degradation, not one per iteration: echo
  // repeats quietly and keep a single event.
  if (!events_.empty() && events_.back().stage == stage &&
      events_.back().reason == reason && events_.back().fallback == fallback) {
    LOG(Debug) << "degraded [" << stage << "] (repeat): " << reason;
    return;
  }
  LOG(Warning) << "degraded [" << stage << "]: " << reason << "; fallback: "
               << fallback;
  events_.push_back(DegradationEvent{std::move(stage), std::move(reason),
                                     std::move(fallback)});
}

int RecoveryLog::count(std::string_view stage) const {
  int n = 0;
  for (const DegradationEvent& e : events_) {
    if (e.stage == stage) ++n;
  }
  return n;
}

std::string RecoveryLog::Summary() const {
  std::ostringstream out;
  for (const DegradationEvent& e : events_) {
    out << e.stage << ": " << e.reason << " -> " << e.fallback << "\n";
  }
  return out.str();
}

}  // namespace activedp
