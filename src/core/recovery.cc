#include "core/recovery.h"

#include <sstream>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace activedp {

void RecoveryLog::Record(std::string stage, std::string reason,
                         std::string fallback) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // A persistent failure (e.g. a misconfigured label model failing every
    // retrain the same way) is one degradation, not one per iteration: echo
    // repeats quietly and keep a single event. Dedupe against the whole log,
    // not just the last event — in a log shared across parallel seeds,
    // events from other seeds interleave between repeats, and event counts
    // must not depend on that scheduling.
    for (const DegradationEvent& e : events_) {
      if (e.stage == stage && e.reason == reason && e.fallback == fallback) {
        LOG(Debug) << "degraded [" << stage << "] (repeat): " << reason;
        return;
      }
    }
    events_.push_back(DegradationEvent{stage, reason, fallback});
  }
  LOG(Warning) << "degraded [" << stage << "]: " << reason << "; fallback: "
               << fallback;
  TraceInstant("degradation", stage, reason + " -> " + fallback);
  MetricsRegistry::Global().counter("recovery.degradations").Increment();
}

bool RecoveryLog::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.empty();
}

size_t RecoveryLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

int RecoveryLog::count(std::string_view stage) const {
  std::lock_guard<std::mutex> lock(mutex_);
  int n = 0;
  for (const DegradationEvent& e : events_) {
    if (e.stage == stage) ++n;
  }
  return n;
}

std::string RecoveryLog::Summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const DegradationEvent& e : events_) {
    out << e.stage << ": " << e.reason << " -> " << e.fallback << "\n";
  }
  return out.str();
}

void RecoveryLog::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

}  // namespace activedp
