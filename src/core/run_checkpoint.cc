#include "core/run_checkpoint.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/atomic_file.h"
#include "util/string_util.h"

namespace activedp {
namespace {

constexpr char kHeader[] = "activedp-checkpoint v1";

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

Status SaveRunCheckpoint(const RunCheckpoint& checkpoint,
                         const std::string& path) {
  const RunResult& partial = checkpoint.partial;
  const size_t k = partial.budgets.size();
  if (partial.test_accuracy.size() != k ||
      partial.label_accuracy.size() != k ||
      partial.label_coverage.size() != k) {
    return Status::InvalidArgument("checkpoint curves have mismatched sizes");
  }
  std::ostringstream out;
  out << kHeader << "\n";
  out << "iter " << checkpoint.completed_iterations << "\n";
  for (size_t i = 0; i < k; ++i) {
    out << "eval " << partial.budgets[i] << " "
        << FormatDouble(partial.test_accuracy[i]) << " "
        << FormatDouble(partial.label_accuracy[i]) << " "
        << FormatDouble(partial.label_coverage[i]) << "\n";
  }
  return AtomicWriteFile(path, WithChecksumFooter(out.str()),
                         "checkpoint.save");
}

Result<RunCheckpoint> LoadRunCheckpoint(const std::string& path) {
  ASSIGN_OR_RETURN(const std::string content, ReadFileVerifyingChecksum(path));
  std::istringstream in{content};
  std::string line;
  if (!std::getline(in, line) || Trim(line) != kHeader) {
    return Status::InvalidArgument("not an activedp checkpoint file: " + path);
  }
  RunCheckpoint checkpoint;
  int line_number = 1;
  bool saw_iter = false;
  while (std::getline(in, line)) {
    ++line_number;
    if (Trim(line).empty()) continue;
    const std::string where = " at line " + std::to_string(line_number);
    std::istringstream fields{line};
    std::string kind;
    fields >> kind;
    if (kind == "iter") {
      if (!(fields >> checkpoint.completed_iterations) ||
          checkpoint.completed_iterations < 0) {
        return Status::InvalidArgument("malformed iteration count" + where);
      }
      saw_iter = true;
    } else if (kind == "eval") {
      int budget;
      double test_accuracy, label_accuracy, label_coverage;
      if (!(fields >> budget >> test_accuracy >> label_accuracy >>
            label_coverage)) {
        return Status::InvalidArgument("malformed eval row" + where);
      }
      if (budget <= 0 || !std::isfinite(test_accuracy) ||
          !std::isfinite(label_accuracy) || !std::isfinite(label_coverage)) {
        return Status::InvalidArgument(
            "eval row with non-positive budget or non-finite metric" + where);
      }
      if (!checkpoint.partial.budgets.empty() &&
          budget <= checkpoint.partial.budgets.back()) {
        return Status::InvalidArgument("eval budgets not increasing" + where);
      }
      checkpoint.partial.budgets.push_back(budget);
      checkpoint.partial.test_accuracy.push_back(test_accuracy);
      checkpoint.partial.label_accuracy.push_back(label_accuracy);
      checkpoint.partial.label_coverage.push_back(label_coverage);
    } else {
      return Status::InvalidArgument("unknown checkpoint record '" + kind +
                                     "'" + where);
    }
  }
  if (!saw_iter) {
    return Status::InvalidArgument("checkpoint missing iteration count: " +
                                   path);
  }
  if (!checkpoint.partial.budgets.empty() &&
      checkpoint.partial.budgets.back() > checkpoint.completed_iterations) {
    return Status::InvalidArgument(
        "checkpoint eval rows exceed completed iterations: " + path);
  }
  return checkpoint;
}

}  // namespace activedp
