#ifndef ACTIVEDP_CORE_SPEC_BUILDER_H_
#define ACTIVEDP_CORE_SPEC_BUILDER_H_

#include <cstdint>
#include <string>

#include "core/experiment.h"
#include "util/flags.h"

namespace activedp {

/// Fluent assembly of an ExperimentSpec, replacing the field-by-field
/// copy-paste every bench binary used to carry. Typical use:
///
///   FlagParser flags;
///   ExperimentSpecBuilder::RegisterCommonFlags(flags);
///   ... flags.Parse(argc, argv) ...
///   ExperimentSpec spec = ExperimentSpecBuilder::FromFlags(flags)
///                             .Dataset("youtube")
///                             .Framework(FrameworkType::kActiveDp)
///                             .Build();
///
/// Every setter returns *this, so chains read as one declaration. Build()
/// copies, so one builder can stamp out a grid of related specs (the
/// bench tables mutate dataset/framework/sampler between runs).
class ExperimentSpecBuilder {
 public:
  ExperimentSpecBuilder() = default;
  /// Starts from an existing spec (escape hatch for uncommon fields).
  explicit ExperimentSpecBuilder(ExperimentSpec spec);

  ExperimentSpecBuilder& Dataset(std::string name);
  ExperimentSpecBuilder& Framework(FrameworkType framework);
  ExperimentSpecBuilder& Iterations(int iterations);
  ExperimentSpecBuilder& EvalEvery(int eval_every);
  ExperimentSpecBuilder& Seeds(int num_seeds);
  ExperimentSpecBuilder& BaseSeed(uint64_t base_seed);
  ExperimentSpecBuilder& SeedThreads(int num_threads);
  ExperimentSpecBuilder& ComputeThreads(int compute_threads);
  ExperimentSpecBuilder& DataScale(double scale);
  ExperimentSpecBuilder& Sampler(SamplerType sampler);
  ExperimentSpecBuilder& LabelModel(LabelModelType label_model);
  /// ADP trade-off factor α (Eq. 2); < 0 keeps the per-task default.
  ExperimentSpecBuilder& AdpAlpha(double alpha);
  /// The Table-3 ablation switches (LabelPick / ConFusion).
  ExperimentSpecBuilder& Ablation(bool use_label_pick, bool use_confusion);
  /// Simulated-user labelling noise (Table 5).
  ExperimentSpecBuilder& UserNoise(double lf_noise);
  ExperimentSpecBuilder& CheckpointDir(std::string dir);
  ExperimentSpecBuilder& TraceDir(std::string dir);
  /// Replaces the whole robustness/observability policy at once.
  ExperimentSpecBuilder& Policy(const RunPolicy& policy);
  /// Paper-scale settings: 300 iterations, 5 seeds, full dataset sizes.
  ExperimentSpecBuilder& PaperScale();

  ExperimentSpec Build() const { return spec_; }
  /// Mutable access for fields without a dedicated setter.
  ExperimentSpec& spec() { return spec_; }

  /// Registers the protocol flags shared by every bench binary:
  /// --iterations, --eval-every, --seeds, --threads, --compute-threads,
  /// --scale and --full. Call before FlagParser::Parse.
  static void RegisterCommonFlags(FlagParser& flags,
                                  const std::string& default_scale = "0.25");
  /// A builder preloaded from those flags (--full applies PaperScale()).
  static ExperimentSpecBuilder FromFlags(const FlagParser& flags);

 private:
  ExperimentSpec spec_;
};

}  // namespace activedp

#endif  // ACTIVEDP_CORE_SPEC_BUILDER_H_
