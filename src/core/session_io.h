#ifndef ACTIVEDP_CORE_SESSION_IO_H_
#define ACTIVEDP_CORE_SESSION_IO_H_

#include <string>
#include <vector>

#include "lf/label_function.h"
#include "text/vocabulary.h"
#include "util/result.h"

namespace activedp {

/// A persisted labelling session: the LF set the user has built plus the
/// query/pseudo-label pairs that anchor them. Lets a session be resumed, an
/// LF set be shared between runs, or rules be reviewed offline.
struct SessionState {
  std::vector<LfPtr> lfs;
  std::vector<int> query_indices;
  std::vector<int> pseudo_labels;
};

/// Serializes the session to a line-based text format:
///   activedp-session v1
///   kw <token_id> <word> <label> <query_index> <pseudo_label>
///   st <feature> <threshold> <op:le|ge> <label> <query_index> <pseudo_label>
/// query_index/pseudo_label are -1 when unknown (e.g. hand-written LF sets).
Status SaveSession(const SessionState& state, const std::string& path);

/// Loads a session. When `vocab` is non-null, keyword token ids are
/// re-resolved against it by word (so an LF set can be moved to a dataset
/// with a different vocabulary); keywords missing from the vocabulary are
/// an error. With a null vocab the stored ids are trusted.
Result<SessionState> LoadSession(const std::string& path,
                                 const Vocabulary* vocab = nullptr);

}  // namespace activedp

#endif  // ACTIVEDP_CORE_SESSION_IO_H_
