#ifndef ACTIVEDP_CORE_BASELINES_H_
#define ACTIVEDP_CORE_BASELINES_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "active/sampler.h"
#include "core/framework.h"
#include "labelmodel/dawid_skene.h"
#include "labelmodel/label_model.h"
#include "lf/oracle.h"
#include "ml/linear_model.h"

namespace activedp {

/// Shared knobs for the baseline frameworks.
struct BaselineOptions {
  LabelModelType label_model_type = LabelModelType::kMetal;
  SimulatedUserOptions user;
  LogisticRegressionOptions al_lr;
  uint64_t seed = 42;
};

/// Nemo [12]: interactive data programming with the SEU sampler. Each
/// iteration queries an instance, the user returns an LF, and the label
/// model is trained on ALL returned LFs; training labels are the label
/// model's predictions on covered rows (no instance-level supervision and no
/// LF selection — the limitations §4.2 discusses).
class NemoFramework : public InteractiveFramework {
 public:
  NemoFramework(const FrameworkContext& context, BaselineOptions options);

  std::string name() const override { return "nemo"; }
  Status Step() override;
  std::vector<std::vector<double>> CurrentTrainingLabels() override;

  int num_lfs() const { return static_cast<int>(lfs_.size()); }

 private:
  const FrameworkContext* context_;
  BaselineOptions options_;
  SimulatedUser user_;
  std::unique_ptr<Sampler> sampler_;
  Rng rng_;
  std::vector<LfPtr> lfs_;
  LabelMatrix train_matrix_;
  std::vector<bool> queried_;
  std::unique_ptr<LabelModel> label_model_;
  bool label_model_ready_ = false;
  std::vector<std::vector<double>> lm_proba_train_;
  std::vector<bool> lm_active_train_;
};

/// IWS [4] under the unbounded IWS-LSE-a setting: the system maintains a
/// global pool of candidate LFs, each iteration shows the most promising
/// unverified candidate to the expert (who answers accurate / not), and an
/// acquisition model over LF output statistics learns to predict which
/// candidates are accurate. The final LF set is every candidate the system
/// believes accurate (verified or predicted), and training labels come from
/// a label model over that set. The original's Gaussian-process accuracy
/// model is replaced by a logistic acquisition model over LF-output
/// features (documented substitution, DESIGN.md §1).
class IwsFramework : public InteractiveFramework {
 public:
  IwsFramework(const FrameworkContext& context, BaselineOptions options);

  std::string name() const override { return "iws"; }
  Status Step() override;
  std::vector<std::vector<double>> CurrentTrainingLabels() override;

  int num_verified() const { return static_cast<int>(verified_.size()); }

 private:
  /// Feature vector of a candidate LF for the acquisition model.
  std::vector<double> CandidateFeatures(int candidate_index) const;
  /// Probability each unverified candidate is accurate (acquisition model,
  /// or coverage prior before enough verifications exist).
  std::vector<double> PredictAccurate() const;

  const FrameworkContext* context_;
  BaselineOptions options_;
  SimulatedUser user_;
  Rng rng_;
  std::vector<LfCandidate> pool_;
  /// Candidate outputs on a fixed row subsample (features + agreement).
  std::vector<std::vector<int8_t>> pool_outputs_;
  std::vector<int> subsample_rows_;
  std::vector<bool> is_verified_;
  std::vector<int> verified_;        // indices into pool_
  std::vector<bool> verified_label_; // oracle's accurate/not answer
  std::unique_ptr<LabelModel> label_model_;
};

/// Revising LF (RLF) [21]: the LF set grows via the same user-driven
/// creation process as ActiveDP (the paper's protocol supplies Λ_t to RLF
/// for free); each iteration's human interaction labels the instance where
/// the label model is most uncertain, and all LF outputs on labelled
/// instances are corrected to the true label before the label model is
/// retrained.
class RlfFramework : public InteractiveFramework {
 public:
  RlfFramework(const FrameworkContext& context, BaselineOptions options);

  std::string name() const override { return "rlf"; }
  Status Step() override;
  std::vector<std::vector<double>> CurrentTrainingLabels() override;

  int num_labeled() const { return static_cast<int>(labeled_rows_.size()); }
  int num_lfs() const { return static_cast<int>(lfs_.size()); }

 private:
  void ReviseRow(int row, int label);

  const FrameworkContext* context_;
  BaselineOptions options_;
  SimulatedUser user_;
  Rng rng_;
  std::vector<LfPtr> lfs_;
  LabelMatrix train_matrix_;       // revised in place on labelled rows
  std::vector<bool> lf_queried_;   // rows consumed by LF creation
  std::vector<bool> labeled_;      // rows labelled by the expert
  std::vector<int> labeled_rows_;
  std::vector<int> labeled_values_;
  std::unique_ptr<LabelModel> label_model_;
  bool label_model_ready_ = false;
  std::vector<std::vector<double>> lm_proba_train_;
};

/// Active WeaSuL [3] — the remaining row of the paper's Table 1: each
/// iteration's human interaction labels the instance where the label model
/// is most uncertain, and the labels guide *label-model training* (here:
/// semi-supervised Dawid–Skene EM with the expert labels clamped), rather
/// than revising LF outputs (RLF) or training a separate AL model
/// (ActiveDP). The LF set grows through the same user-driven creation
/// process the protocol supplies to RLF. Prediction remains LF-only.
class ActiveWeasulFramework : public InteractiveFramework {
 public:
  ActiveWeasulFramework(const FrameworkContext& context,
                        BaselineOptions options);

  std::string name() const override { return "active-weasul"; }
  Status Step() override;
  std::vector<std::vector<double>> CurrentTrainingLabels() override;

  int num_labeled() const { return static_cast<int>(labeled_rows_.size()); }
  int num_lfs() const { return static_cast<int>(lfs_.size()); }

 private:
  const FrameworkContext* context_;
  BaselineOptions options_;
  SimulatedUser user_;
  Rng rng_;
  std::vector<LfPtr> lfs_;
  LabelMatrix train_matrix_;
  std::vector<bool> lf_queried_;
  std::vector<bool> labeled_;
  std::vector<int> labeled_rows_;
  std::vector<int> labeled_values_;
  DawidSkeneModel label_model_;
  bool label_model_ready_ = false;
  std::vector<std::vector<double>> lm_proba_train_;
};

/// Classical uncertainty sampling [16]: pure active learning. Each
/// iteration labels the instance with the highest predictive entropy under
/// a model trained on the labelled set; training labels are exactly the
/// labelled instances.
class UncertaintyFramework : public InteractiveFramework {
 public:
  UncertaintyFramework(const FrameworkContext& context,
                       BaselineOptions options);

  std::string name() const override { return "us"; }
  Status Step() override;
  std::vector<std::vector<double>> CurrentTrainingLabels() override;

  int num_labeled() const { return static_cast<int>(labeled_rows_.size()); }

 private:
  void Retrain();

  const FrameworkContext* context_;
  BaselineOptions options_;
  SimulatedUser user_;
  Rng rng_;
  std::vector<bool> queried_;
  std::vector<int> labeled_rows_;
  std::vector<int> labels_;
  std::optional<LogisticRegression> model_;
  std::vector<std::vector<double>> proba_train_;
};

}  // namespace activedp

#endif  // ACTIVEDP_CORE_BASELINES_H_
