#include "core/session_io.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/atomic_file.h"
#include "util/string_util.h"

namespace activedp {
namespace {

constexpr char kHeader[] = "activedp-session v1";

}  // namespace

Status SaveSession(const SessionState& state, const std::string& path) {
  if (state.query_indices.size() != state.lfs.size() &&
      !state.query_indices.empty()) {
    return Status::InvalidArgument("query_indices size mismatch");
  }
  if (state.pseudo_labels.size() != state.lfs.size() &&
      !state.pseudo_labels.empty()) {
    return Status::InvalidArgument("pseudo_labels size mismatch");
  }
  std::ostringstream out;
  out << kHeader << "\n";
  for (size_t i = 0; i < state.lfs.size(); ++i) {
    const int query =
        state.query_indices.empty() ? -1 : state.query_indices[i];
    const int pseudo =
        state.pseudo_labels.empty() ? -1 : state.pseudo_labels[i];
    if (const auto* keyword =
            dynamic_cast<const KeywordLf*>(state.lfs[i].get())) {
      if (keyword->word().find_first_of(" \t\n") != std::string::npos) {
        return Status::InvalidArgument("keyword contains whitespace: " +
                                       keyword->word());
      }
      out << "kw " << keyword->token_id() << " " << keyword->word() << " "
          << keyword->label() << " " << query << " " << pseudo << "\n";
    } else if (const auto* stump =
                   dynamic_cast<const ThresholdLf*>(state.lfs[i].get())) {
      char threshold[64];
      std::snprintf(threshold, sizeof(threshold), "%.17g",
                    stump->threshold());
      out << "st " << stump->feature() << " " << threshold << " "
          << (stump->op() == StumpOp::kLessEqual ? "le" : "ge") << " "
          << stump->label() << " " << query << " " << pseudo << "\n";
    } else {
      return Status::Unimplemented("cannot serialize custom LF type: " +
                                   state.lfs[i]->Name());
    }
  }
  // Atomic tmp + fsync + rename with a checksum footer: a crash mid-save
  // leaves the previous session intact, and a truncated copy is detected at
  // load time instead of silently resuming from half a session.
  return AtomicWriteFile(path, WithChecksumFooter(out.str()), "session.save");
}

Result<SessionState> LoadSession(const std::string& path,
                                 const Vocabulary* vocab) {
  ASSIGN_OR_RETURN(const std::string content, ReadFileVerifyingChecksum(path));
  std::istringstream in{content};
  std::string line;
  if (!std::getline(in, line) || Trim(line) != kHeader) {
    return Status::InvalidArgument("not an activedp session file: " + path);
  }
  SessionState state;
  int line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (Trim(line).empty()) continue;
    std::istringstream fields{line};
    std::string kind;
    fields >> kind;
    const std::string where = " at line " + std::to_string(line_number);
    int query = -1, pseudo = -1;
    if (kind == "kw") {
      int token_id, label;
      std::string word;
      if (!(fields >> token_id >> word >> label >> query >> pseudo)) {
        return Status::InvalidArgument("malformed keyword LF" + where);
      }
      if (label < 0 || token_id < 0) {
        return Status::InvalidArgument("keyword LF with negative label/id" +
                                       where);
      }
      if (vocab != nullptr) {
        token_id = vocab->GetId(word);
        if (token_id == Vocabulary::kUnknownId) {
          return Status::NotFound("keyword not in vocabulary: " + word +
                                  where);
        }
      }
      state.lfs.push_back(std::make_shared<KeywordLf>(token_id, word, label));
    } else if (kind == "st") {
      int feature, label;
      double threshold;
      std::string op;
      if (!(fields >> feature >> threshold >> op >> label >> query >>
            pseudo) ||
          (op != "le" && op != "ge")) {
        return Status::InvalidArgument("malformed stump LF" + where);
      }
      if (label < 0 || feature < 0 || !std::isfinite(threshold)) {
        return Status::InvalidArgument(
            "stump LF with negative label/feature or non-finite threshold" +
            where);
      }
      state.lfs.push_back(std::make_shared<ThresholdLf>(
          feature, threshold,
          op == "le" ? StumpOp::kLessEqual : StumpOp::kGreaterEqual, label));
    } else {
      return Status::InvalidArgument("unknown LF kind '" + kind + "'" +
                                     where);
    }
    state.query_indices.push_back(query);
    state.pseudo_labels.push_back(pseudo);
  }
  return state;
}

}  // namespace activedp
