#include "core/spec_builder.h"

#include <utility>

namespace activedp {

ExperimentSpecBuilder::ExperimentSpecBuilder(ExperimentSpec spec)
    : spec_(std::move(spec)) {}

ExperimentSpecBuilder& ExperimentSpecBuilder::Dataset(std::string name) {
  spec_.dataset = std::move(name);
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::Framework(
    FrameworkType framework) {
  spec_.framework = framework;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::Iterations(int iterations) {
  spec_.protocol.iterations = iterations;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::EvalEvery(int eval_every) {
  spec_.protocol.eval_every = eval_every;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::Seeds(int num_seeds) {
  spec_.num_seeds = num_seeds;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::BaseSeed(uint64_t base_seed) {
  spec_.base_seed = base_seed;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::SeedThreads(int num_threads) {
  spec_.num_threads = num_threads;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::ComputeThreads(
    int compute_threads) {
  spec_.compute_threads = compute_threads;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::DataScale(double scale) {
  spec_.data_scale = scale;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::Sampler(SamplerType sampler) {
  spec_.adp.sampler_type = sampler;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::LabelModel(
    LabelModelType label_model) {
  spec_.adp.label_model_type = label_model;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::AdpAlpha(double alpha) {
  spec_.adp.adp_alpha = alpha;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::Ablation(bool use_label_pick,
                                                       bool use_confusion) {
  spec_.adp.use_label_pick = use_label_pick;
  spec_.adp.use_confusion = use_confusion;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::UserNoise(double lf_noise) {
  spec_.adp.user.label_noise = lf_noise;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::CheckpointDir(std::string dir) {
  spec_.policy.checkpoint_path = std::move(dir);
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::TraceDir(std::string dir) {
  spec_.policy.trace_dir = std::move(dir);
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::Policy(const RunPolicy& policy) {
  spec_.policy = policy;
  return *this;
}

ExperimentSpecBuilder& ExperimentSpecBuilder::PaperScale() {
  spec_.protocol.iterations = 300;
  spec_.num_seeds = 5;
  spec_.data_scale = 1.0;
  return *this;
}

void ExperimentSpecBuilder::RegisterCommonFlags(
    FlagParser& flags, const std::string& default_scale) {
  flags.AddFlag("iterations", "100", "interaction budget per run");
  flags.AddFlag("eval-every", "10", "checkpoint spacing");
  flags.AddFlag("seeds", "2", "number of random seeds");
  flags.AddFlag("threads", "1", "worker threads for parallel seeds");
  flags.AddFlag("compute-threads", "0",
                "process-wide compute pool size (0 = leave unchanged)");
  flags.AddFlag("scale", default_scale, "fraction of paper dataset sizes");
  flags.AddFlag("full", "false", "paper scale: 300 iters, 5 seeds, scale 1.0");
}

ExperimentSpecBuilder ExperimentSpecBuilder::FromFlags(
    const FlagParser& flags) {
  ExperimentSpecBuilder builder;
  builder.Iterations(flags.GetInt("iterations"))
      .EvalEvery(flags.GetInt("eval-every"))
      .Seeds(flags.GetInt("seeds"))
      .SeedThreads(flags.GetInt("threads"))
      .ComputeThreads(flags.GetInt("compute-threads"))
      .DataScale(flags.GetDouble("scale"));
  if (flags.GetBool("full")) builder.PaperScale();
  return builder;
}

}  // namespace activedp
