#include "core/auto_lf.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

#include "util/check.h"

namespace activedp {
namespace {

/// Wilson score interval lower bound for a proportion p observed over n
/// (weighted) trials.
double WilsonLowerBound(double p, double n, double z) {
  if (n <= 0.0) return 0.0;
  const double z2 = z * z;
  const double denominator = 1.0 + z2 / n;
  const double centre = p + z2 / (2.0 * n);
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return (centre - margin) / denominator;
}

}  // namespace

Result<std::vector<SynthesizedLf>> SynthesizeLfs(
    const Dataset& train, const LfSpace& space,
    const std::vector<int>& seed_rows, const std::vector<int>& seed_labels,
    const AutoLfOptions& options) {
  if (seed_rows.size() != seed_labels.size())
    return Status::InvalidArgument("seed rows/labels size mismatch");
  if (seed_rows.empty())
    return Status::InvalidArgument("empty labelled seed");
  for (int row : seed_rows) {
    if (row < 0 || row >= train.size())
      return Status::OutOfRange("seed row out of range");
  }

  const std::vector<LfCandidate> pool =
      space.AllCandidates(options.min_coverage);
  if (pool.empty()) return Status::FailedPrecondition("empty candidate pool");

  // Cache each candidate's outputs on the seed.
  const int s = static_cast<int>(seed_rows.size());
  std::vector<std::vector<int8_t>> outputs(pool.size());
  for (size_t c = 0; c < pool.size(); ++c) {
    outputs[c].resize(s);
    for (int i = 0; i < s; ++i) {
      outputs[c][i] =
          static_cast<int8_t>(pool[c].lf->Apply(train.example(seed_rows[i])));
    }
  }

  std::vector<SynthesizedLf> accepted;
  std::vector<bool> taken(pool.size(), false);
  std::vector<bool> covered(s, false);
  std::set<std::string> keys;
  const int num_classes = train.meta().num_classes;
  std::vector<int> accepted_per_class(num_classes, 0);

  // Finds the highest-scoring qualifying candidate, optionally restricted to
  // LFs voting a least-represented class. Returns the pool index or -1.
  auto find_best = [&](bool restricted, int scarce_count,
                       double* best_accuracy) {
    int best = -1;
    double best_score = 0.0;
    for (size_t c = 0; c < pool.size(); ++c) {
      if (taken[c]) continue;
      if (restricted &&
          accepted_per_class[pool[c].lf->label()] != scarce_count) {
        continue;
      }
      double weighted_correct = 0.0, weighted_total = 0.0;
      int activations = 0, correct = 0;
      for (int i = 0; i < s; ++i) {
        const int vote = outputs[c][i];
        if (vote == kAbstain) continue;
        ++activations;
        const bool right = vote == seed_labels[i];
        correct += right;
        const double weight = covered[i] ? options.covered_row_weight : 1.0;
        weighted_total += weight;
        if (right) weighted_correct += weight;
      }
      if (activations < options.min_seed_activations || weighted_total <= 0.0)
        continue;
      // Statistical gate on the raw seed evidence; the boosting weights
      // only shape the ranking below.
      const double raw_accuracy = static_cast<double>(correct) / activations;
      if (WilsonLowerBound(raw_accuracy, activations, options.wilson_z) <
          options.min_seed_accuracy) {
        continue;
      }
      // Net weighted evidence: rewards accuracy on uncovered seed rows.
      const double score =
          weighted_correct - (weighted_total - weighted_correct);
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(c);
        *best_accuracy = weighted_correct / weighted_total;
      }
    }
    return best;
  };

  while (static_cast<int>(accepted.size()) < options.max_lfs) {
    // A class-skewed LF set yields class-skewed weak labels that poison the
    // downstream model, so each round first considers only LFs voting a
    // least-represented class, falling back to any class.
    int scarce_count = accepted_per_class[0];
    for (int y = 1; y < num_classes; ++y) {
      scarce_count = std::min(scarce_count, accepted_per_class[y]);
    }
    double best_accuracy = 0.0;
    int best = find_best(/*restricted=*/true, scarce_count, &best_accuracy);
    if (best < 0) {
      best = find_best(/*restricted=*/false, scarce_count, &best_accuracy);
    }
    if (best < 0) break;  // nothing clears the bar any more
    taken[best] = true;
    if (!keys.insert(pool[best].lf->Key()).second) continue;  // duplicate
    ++accepted_per_class[pool[best].lf->label()];
    SynthesizedLf chosen;
    chosen.lf = pool[best].lf;
    chosen.seed_accuracy = best_accuracy;
    chosen.coverage = pool[best].coverage;
    accepted.push_back(std::move(chosen));
    for (int i = 0; i < s; ++i) {
      if (outputs[best][i] != kAbstain) covered[i] = true;
    }
  }

  if (accepted.empty())
    return Status::FailedPrecondition(
        "no candidate LF cleared the seed-accuracy bar");
  return accepted;
}

}  // namespace activedp
