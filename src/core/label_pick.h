#ifndef ACTIVEDP_CORE_LABEL_PICK_H_
#define ACTIVEDP_CORE_LABEL_PICK_H_

#include <vector>

#include "core/recovery.h"
#include "graphical/markov_blanket.h"
#include "lf/lf_applier.h"
#include "util/result.h"

namespace activedp {

struct LabelPickOptions {
  /// Step 1: prune LFs whose validation accuracy is at or below random
  /// (1 / num_classes). LFs that never fire on validation are kept.
  bool prune_by_validation_accuracy = true;
  /// Minimum validation activations before the accuracy estimate is trusted
  /// for pruning. Low-coverage LFs fire on a handful of validation rows, and
  /// pruning on 2–3 Bernoulli samples removes a third of the *good* LFs by
  /// chance; below this evidence level the LF is kept.
  int min_activations_to_prune = 5;
  /// Step 2: Markov-blanket selection on the queried-instance table.
  bool select_markov_blanket = true;
  MarkovBlanketOptions blanket;
  /// Below this many queried instances the blanket step is skipped (the
  /// graphical model is under-determined) and all surviving LFs are kept.
  int min_queries_for_blanket = 20;
};

/// LabelPick (§3.4): selects the helpful LF subset Λ*_t ⊂ Λ_t used to train
/// the label model. First prunes LFs performing worse than random on the
/// holdout validation set; then builds the small labelled table
/// L_Λ = {(Λ_t(x_l), ỹ_l)} over the queried instances, infers the
/// dependency structure with the graphical lasso, and keeps the LFs in the
/// Markov blanket of the label. Returns indices into `lfs`; guaranteed
/// non-empty whenever `lfs` is non-empty (falls back to the survivors of
/// step 1, or to all LFs, when the blanket is empty/degenerate).
///
/// `valid_matrix` holds LF outputs on the validation split (one column per
/// LF, aligned with `lfs`); `query_matrix` holds LF outputs on the queried
/// instances (one row per query); `pseudo_labels` are the ỹ_l inferred from
/// user feedback. When `recovery` is non-null, a blanket failure that
/// degrades to accuracy-pruning-only selection is recorded there.
Result<std::vector<int>> LabelPick(int num_lfs, int num_classes,
                                   const LabelMatrix& valid_matrix,
                                   const std::vector<int>& valid_labels,
                                   const LabelMatrix& query_matrix,
                                   const std::vector<int>& pseudo_labels,
                                   const LabelPickOptions& options,
                                   RecoveryLog* recovery = nullptr);

/// Encodes weak labels for the graphical model: abstain -> 0; binary
/// classes -> ±1; multiclass c -> c - (C-1)/2 (centered).
double EncodeWeakLabel(int weak_label, int num_classes);

}  // namespace activedp

#endif  // ACTIVEDP_CORE_LABEL_PICK_H_
