#include "core/end_model.h"

#include "util/check.h"

namespace activedp {

Result<LogisticRegression> TrainEndModel(
    const std::vector<SparseVector>& features,
    const std::vector<std::vector<double>>& soft_labels, int num_classes,
    int dim, const EndModelOptions& options) {
  CHECK_EQ(features.size(), soft_labels.size());
  std::vector<SparseVector> x;
  std::vector<std::vector<double>> y;
  for (size_t i = 0; i < features.size(); ++i) {
    if (soft_labels[i].empty()) continue;  // rejected by ConFusion
    CHECK_EQ(static_cast<int>(soft_labels[i].size()), num_classes);
    x.push_back(features[i]);
    y.push_back(soft_labels[i]);
  }
  if (x.empty())
    return Status::FailedPrecondition("no labelled rows to train on");
  return LogisticRegression::Fit(x, y, num_classes, dim, options.lr);
}

double EvaluateAccuracy(const LogisticRegression& model,
                        const std::vector<SparseVector>& features,
                        const std::vector<int>& labels) {
  CHECK_EQ(features.size(), labels.size());
  if (features.empty()) return 0.0;
  int correct = 0;
  for (size_t i = 0; i < features.size(); ++i) {
    if (model.Predict(features[i]) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / features.size();
}

}  // namespace activedp
