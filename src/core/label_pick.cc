#include "core/label_pick.h"

#include "math/matrix.h"
#include "util/check.h"
#include "util/logging.h"

namespace activedp {

double EncodeWeakLabel(int weak_label, int num_classes) {
  if (weak_label == kAbstain) return 0.0;
  if (num_classes == 2) return weak_label == 1 ? 1.0 : -1.0;
  return static_cast<double>(weak_label) - (num_classes - 1) / 2.0;
}

Result<std::vector<int>> LabelPick(int num_lfs, int num_classes,
                                   const LabelMatrix& valid_matrix,
                                   const std::vector<int>& valid_labels,
                                   const LabelMatrix& query_matrix,
                                   const std::vector<int>& pseudo_labels,
                                   const LabelPickOptions& options,
                                   RecoveryLog* recovery) {
  if (num_lfs <= 0) return Status::InvalidArgument("no LFs to select from");
  CHECK_EQ(valid_matrix.num_cols(), num_lfs);
  CHECK_EQ(query_matrix.num_cols(), num_lfs);
  CHECK_EQ(query_matrix.num_rows(),
           static_cast<int>(pseudo_labels.size()));

  // Step 1: validation-accuracy pruning.
  std::vector<int> survivors;
  if (options.prune_by_validation_accuracy) {
    const double random_accuracy = 1.0 / num_classes;
    for (int j = 0; j < num_lfs; ++j) {
      const LfColumnStats stats =
          ComputeColumnStats(valid_matrix.column(j), valid_labels);
      // Too little evidence (including never firing on validation) is not
      // "worse than random"; keep such LFs.
      if (stats.activations < options.min_activations_to_prune ||
          stats.accuracy > random_accuracy) {
        survivors.push_back(j);
      }
    }
    if (survivors.empty()) {
      // Everything looked worse than random; trusting step 1 here would
      // leave the label model with nothing, so keep all.
      survivors.resize(num_lfs);
      for (int j = 0; j < num_lfs; ++j) survivors[j] = j;
    }
  } else {
    survivors.resize(num_lfs);
    for (int j = 0; j < num_lfs; ++j) survivors[j] = j;
  }

  const int t = query_matrix.num_rows();
  if (!options.select_markov_blanket || t < options.min_queries_for_blanket ||
      survivors.size() < 2) {
    return survivors;
  }

  // Step 2: Markov blanket of the label over L_Λ = {(Λ_t(x_l), ỹ_l)}.
  const int p = static_cast<int>(survivors.size()) + 1;  // + label column
  Matrix data(t, p);
  for (int i = 0; i < t; ++i) {
    for (size_t jj = 0; jj < survivors.size(); ++jj) {
      data(i, static_cast<int>(jj)) =
          EncodeWeakLabel(query_matrix.At(i, survivors[jj]), num_classes);
    }
    data(i, p - 1) = EncodeWeakLabel(pseudo_labels[i], num_classes);
  }
  Result<std::vector<int>> blanket =
      MarkovBlanket(data, /*target=*/p - 1, options.blanket, recovery);
  if (!blanket.ok()) {
    // Degradation cascade step 1: a glasso/blanket failure reduces
    // LabelPick to its validation-accuracy pruning step.
    if (recovery != nullptr) {
      recovery->Record("glasso", blanket.status().ToString(),
                       "accuracy-pruning-only LabelPick (" +
                           std::to_string(survivors.size()) + " LFs kept)");
    } else {
      LOG(Warning) << "LabelPick blanket failed ("
                   << blanket.status().ToString() << "); keeping "
                   << survivors.size() << " accuracy-pruned LFs";
    }
    return survivors;
  }
  if (blanket->empty()) return survivors;

  std::vector<int> selected;
  selected.reserve(blanket->size());
  for (int idx : *blanket) selected.push_back(survivors[idx]);
  return selected;
}

}  // namespace activedp
