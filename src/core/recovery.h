#ifndef ACTIVEDP_CORE_RECOVERY_H_
#define ACTIVEDP_CORE_RECOVERY_H_

#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace activedp {

/// One recorded degradation: a pipeline stage failed and the pipeline
/// continued on a documented fallback instead of dying.
struct DegradationEvent {
  /// Stage that failed, e.g. "glasso", "label_model", "al_model",
  /// "confusion", "checkpoint.save", "checkpoint.load".
  std::string stage;
  /// Why it failed (usually a Status::ToString()).
  std::string reason;
  /// What the pipeline fell back to, e.g. "majority-vote label model".
  std::string fallback;
};

/// Structured log of the degradation cascade (DESIGN.md "Failure
/// semantics"). The cascade order inside ActiveDp:
///   1. graphical-lasso / blanket failure -> accuracy-pruning-only LabelPick
///   2. label-model fit failure           -> majority-vote aggregation
///   3. AL-model training failure         -> label-model-only ConFusion
///   4. checkpoint save/load failure      -> run continues / starts fresh
/// Every step is recorded here (and echoed at Warning severity) so a
/// degraded run is diagnosable after the fact instead of silently wrong.
///
/// Mutations and counting reads are mutex-guarded: a log shared across
/// parallel seeds (one `ProtocolOptions.recovery` pointer copied into every
/// seed's protocol under `ExperimentSpec.num_threads > 1`) stays race-free.
/// `events()` hands out an unguarded reference and must only be read once
/// writers are quiescent (after RunExperiment returns).
class RecoveryLog {
 public:
  /// Records one degradation and logs it at Warning severity. A repeat of an
  /// already-recorded event (same stage/reason/fallback — e.g. a
  /// misconfigured model failing identically every retrain) is not
  /// re-recorded, so events() reads as a history of distinct degradations
  /// regardless of how parallel seeds interleave their records.
  void Record(std::string stage, std::string reason, std::string fallback);

  /// Unsynchronized view — only valid with no concurrent writers.
  const std::vector<DegradationEvent>& events() const { return events_; }
  bool empty() const;
  size_t size() const;
  int count(std::string_view stage) const;

  /// One line per event, for reports and tests.
  std::string Summary() const;

  void Clear();

 private:
  mutable std::mutex mutex_;
  std::vector<DegradationEvent> events_;
};

}  // namespace activedp

#endif  // ACTIVEDP_CORE_RECOVERY_H_
