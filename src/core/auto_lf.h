#ifndef ACTIVEDP_CORE_AUTO_LF_H_
#define ACTIVEDP_CORE_AUTO_LF_H_

#include <vector>

#include "data/dataset.h"
#include "lf/lf_candidates.h"
#include "util/result.h"

namespace activedp {

struct AutoLfOptions {
  /// Maximum number of LFs to synthesize.
  int max_lfs = 40;
  /// Minimum (weighted) accuracy an LF must reach on the labelled seed.
  /// Judged by the Wilson lower confidence bound of the observed accuracy,
  /// so a lucky 3-for-3 on the seed does not qualify — Snuba's guard
  /// against seed overfitting.
  double min_seed_accuracy = 0.6;
  /// z of the Wilson lower bound (2.0 ~ one-sided 97.7%, strict because thousands of candidates are tested).
  double wilson_z = 2.0;
  /// Minimum seed instances an LF must fire on before it is trusted.
  int min_seed_activations = 4;
  /// Minimum unlabelled coverage for pool candidates.
  double min_coverage = 0.005;
  /// Down-weight applied to seed rows already covered by an accepted LF,
  /// steering later picks toward uncovered data (Snuba's diversity
  /// mechanism).
  double covered_row_weight = 0.25;
};

/// One synthesized LF with its seed statistics.
struct SynthesizedLf {
  LfPtr lf;
  /// Weighted accuracy on the seed at the time it was accepted.
  double seed_accuracy = 0.0;
  /// Unlabelled coverage.
  double coverage = 0.0;
};

/// Snuba-style automatic LF synthesis (Varma & Ré 2018, cited as the
/// paper's [35]): given a small labelled seed, repeatedly pick from the
/// candidate space the rule that best classifies the *not-yet-covered* part
/// of the seed, until no candidate clears the accuracy bar. No human in the
/// loop — this trades the paper's interactive LF creation for a seed of
/// instance labels. The returned set feeds any label model.
///
/// `seed_rows` index into `train`; `seed_labels` are their labels (supplied
/// by the caller — the function never touches train's hidden labels).
Result<std::vector<SynthesizedLf>> SynthesizeLfs(
    const Dataset& train, const LfSpace& space,
    const std::vector<int>& seed_rows, const std::vector<int>& seed_labels,
    const AutoLfOptions& options = {});

}  // namespace activedp

#endif  // ACTIVEDP_CORE_AUTO_LF_H_
