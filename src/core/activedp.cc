#include "core/activedp.h"

#include <numeric>

#include "labelmodel/majority_vote.h"
#include "ml/metrics.h"

#include "util/check.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/numeric_guard.h"
#include "util/trace.h"

namespace activedp {

ActiveDp::ActiveDp(const FrameworkContext& context, ActiveDpOptions options)
    : context_(&context),
      options_(options),
      user_(context.split->train, options.user),
      sampler_(MakeSampler(options.sampler_type, options.seed ^ 0x5a5a)),
      rng_(options.seed),
      train_matrix_(context.split->train.size()),
      valid_matrix_(context.split->valid.size()),
      queried_(context.split->train.size(), false),
      retrier_(options.policy.retry, &retry_log_) {
  if (options_.adp_alpha >= 0.0) {
    alpha_ = options_.adp_alpha;
  } else {
    // Paper §3.3: α = 0.5 for textual datasets, 0.99 for tabular ones.
    alpha_ = context.split->train.meta().task == TaskType::kTextClassification
                 ? 0.5
                 : 0.99;
  }
  label_model_ = MakeLabelModel(options_.label_model_type);
  // One budget for the whole pipeline: every solver sees the same deadline
  // and cancellation token, and the blanket step shares the retry budget.
  label_model_->set_limits(options_.policy.limits);
  options_.al_lr.limits = options_.policy.limits;
  options_.label_pick.blanket.limits = options_.policy.limits;
  options_.label_pick.blanket.retrier = &retrier_;
}

SamplerContext ActiveDp::BuildSamplerContext() const {
  SamplerContext ctx;
  ctx.train = &context_->split->train;
  ctx.features = &context_->train_features;
  ctx.feature_dim = context_->feature_dim;
  ctx.labeled_rows = &query_indices_;
  ctx.labeled_values = &pseudo_labels_;
  ctx.al_proba = al_model_.has_value() ? &al_proba_train_ : nullptr;
  ctx.lm_proba = label_model_ready_ ? &lm_proba_train_ : nullptr;
  ctx.lm_active = label_model_ready_ ? &lm_active_train_ : nullptr;
  ctx.queried = &queried_;
  ctx.num_labeled = static_cast<int>(query_indices_.size());
  if (!pseudo_labels_.empty()) {
    double positive = 0.0;
    for (int y : pseudo_labels_) positive += (y == 1);
    ctx.labeled_positive_fraction = positive / pseudo_labels_.size();
  }
  ctx.lf_space = &user_.lf_space();
  ctx.adp_alpha = alpha_;
  return ctx;
}

Status ActiveDp::Step() {
  TraceSpan step_span("activedp.step");
  MetricsRegistry::Global().counter("activedp.steps").Increment();
  RETURN_IF_ERROR(options_.policy.limits.Check("activedp.step"));
  const SamplerContext sampler_context = BuildSamplerContext();
  const int query = [&]() {
    TraceSpan span("sampler.select");
    return sampler_->SelectQuery(sampler_context, rng_);
  }();
  if (query < 0)
    return Status::FailedPrecondition("all training instances queried");
  CHECK(!queried_[query]);
  queried_[query] = true;
  last_query_ = query;

  FaultInjector& injector = FaultInjector::Global();
  const int oracle_fires_before =
      injector.any_armed() ? injector.fire_count("oracle.create_lf") : 0;
  std::optional<LfCandidate> response = [&]() {
    TraceSpan span("oracle.create_lf");
    return user_.CreateLf(query);
  }();
  if (!response.has_value()) {
    // The user could not come up with a (new) rule for this instance; the
    // interaction is spent but the models are unchanged. An *injected*
    // empty response (as opposed to a naturally exhausted candidate set) is
    // recorded so chaos runs can account for every fired fault.
    if (injector.any_armed() &&
        injector.fire_count("oracle.create_lf") > oracle_fires_before) {
      recovery_.Record("oracle",
                       "injected empty LF response at oracle.create_lf",
                       "interaction spent, models unchanged");
    }
    return Status::Ok();
  }
  const LfPtr lf = response->lf;
  lfs_.push_back(lf);
  {
    TraceSpan span("lf.apply");
    span.AddArg("num_lfs", static_cast<int64_t>(lfs_.size()));
    train_matrix_.AddColumn(ApplyLf(*lf, context_->split->train));
    valid_matrix_.AddColumn(ApplyLf(*lf, context_->split->valid));
  }

  // The LF was designed while looking at the query instance, so it fires on
  // it; its vote is the query's pseudo-label ỹ = λ_t(x_t) (§3.1).
  CHECK_NE(lf->Apply(context_->split->train.example(query)), kAbstain);
  query_indices_.push_back(query);
  pseudo_labels_.push_back(lf->label());

  RetrainAlModel();
  RetrainLabelModel();
  return Status::Ok();
}

Status ActiveDp::Restore(const SessionState& state) {
  if (!lfs_.empty() || user_.num_queries_answered() > 0) {
    return Status::FailedPrecondition(
        "Restore must run on a fresh pipeline");
  }
  if (state.query_indices.size() != state.lfs.size() ||
      state.pseudo_labels.size() != state.lfs.size()) {
    return Status::InvalidArgument("session state sizes are inconsistent");
  }
  const int n = context_->split->train.size();
  for (size_t i = 0; i < state.lfs.size(); ++i) {
    const LfPtr& lf = state.lfs[i];
    lfs_.push_back(lf);
    train_matrix_.AddColumn(ApplyLf(*lf, context_->split->train));
    valid_matrix_.AddColumn(ApplyLf(*lf, context_->split->valid));
    const int query = state.query_indices[i];
    if (query < 0) continue;  // hand-written LF: no pseudo-label anchor
    if (query >= n) {
      return Status::OutOfRange("query index " + std::to_string(query) +
                                " outside the training set");
    }
    if (!queried_[query]) queried_[query] = true;
    query_indices_.push_back(query);
    pseudo_labels_.push_back(state.pseudo_labels[i] >= 0
                                 ? state.pseudo_labels[i]
                                 : lf->label());
  }
  if (!lfs_.empty()) {
    RetrainAlModel();
    RetrainLabelModel();
  }
  return Status::Ok();
}

SessionState ActiveDp::Snapshot() const {
  SessionState state;
  state.lfs = lfs_;
  state.query_indices = query_indices_;
  state.pseudo_labels = pseudo_labels_;
  return state;
}

void ActiveDp::RetrainAlModel() {
  const int t = static_cast<int>(query_indices_.size());
  if (t < options_.min_labeled_for_al) return;
  bool has_two_classes = false;
  for (int i = 1; i < t; ++i) {
    if (pseudo_labels_[i] != pseudo_labels_[0]) {
      has_two_classes = true;
      break;
    }
  }
  if (!has_two_classes) return;

  TraceSpan span("al_model.fit");
  span.AddArg("num_labeled", t);
  std::vector<SparseVector> x;
  x.reserve(t);
  for (int idx : query_indices_) x.push_back(context_->train_features[idx]);
  LogisticRegressionOptions lr = options_.al_lr;
  lr.seed = options_.seed ^ 0x11;
  // Retry-before-degrade: transient fit failures (injected faults, diverged
  // weights) get the policy's attempts before the cascade below fires.
  Result<LogisticRegression> model =
      retrier_.RunResulting<LogisticRegression>(
          "al_model.fit", options_.policy.limits, [&]() {
            return LogisticRegression::FitHard(x, pseudo_labels_,
                                               context_->num_classes,
                                               context_->feature_dim, lr);
          });
  if (!model.ok()) {
    // Degradation cascade step 3: the pipeline keeps running on the label
    // model alone (ConFusion handles empty AL rows); a previously trained
    // AL model, if any, stays in service.
    recovery_.Record("al_model", model.status().ToString(),
                     al_model_.has_value()
                         ? "keeping previous AL model"
                         : "label-model-only ConFusion");
    return;
  }
  al_model_ = std::move(*model);
  al_proba_train_ = AlProba(context_->train_features);
}

double ActiveDp::ValidationLabelModelAccuracy(
    const std::vector<int>& columns) const {
  const LabelMatrix valid_selected = valid_matrix_.SelectColumns(columns);
  const LabelMatrix train_selected = train_matrix_.SelectColumns(columns);
  auto model = MakeLabelModel(options_.label_model_type);
  if (!model->Fit(train_selected, context_->num_classes).ok()) return -1.0;
  const Result<std::vector<int>> predictions =
      model->PredictAll(valid_selected);
  if (!predictions.ok()) return -1.0;
  return Accuracy(*predictions, context_->valid_labels);
}

void ActiveDp::RetrainLabelModel() {
  const int m = static_cast<int>(lfs_.size());
  if (m == 0) return;

  std::vector<int> all(m);
  std::iota(all.begin(), all.end(), 0);
  if (options_.use_label_pick) {
    TraceSpan pick_span("label_pick");
    pick_span.AddArg("num_lfs", m);
    Result<std::vector<int>> picked = LabelPick(
        m, context_->num_classes, valid_matrix_, context_->valid_labels,
        train_matrix_.SelectRows(query_indices_), pseudo_labels_,
        options_.label_pick, &recovery_);
    if (!picked.ok()) {
      // Degradation cascade step 1 (total LabelPick failure): keep every
      // LF, i.e. run the label model unfiltered.
      recovery_.Record("label_pick", picked.status().ToString(),
                       "keeping all LFs");
      selected_ = all;
    } else {
      selected_ = std::move(*picked);
    }
    if (selected_.empty()) selected_ = all;
    // LabelPick proposes; the holdout disposes: keep the pruned set only
    // when it does not hurt label-model accuracy on the validation split
    // (the same holdout §3.2/§3.4 already consult).
    if (selected_.size() < all.size()) {
      if (ValidationLabelModelAccuracy(selected_) + 1e-9 <
          ValidationLabelModelAccuracy(all)) {
        selected_ = all;
      }
    }
    pick_span.AddArg("kept", static_cast<int64_t>(selected_.size()));
  } else {
    selected_ = all;
  }

  const LabelMatrix train_selected = train_matrix_.SelectColumns(selected_);
  // Retry-before-degrade: the configured model gets the policy's attempts
  // at full quality before the majority-vote fallback below fires. MeTaL's
  // fit fully re-initializes, so a retried fit after a transient fault is
  // bitwise-identical to a fault-free one.
  const Status fit = [&]() {
    TraceSpan span("label_model.fit");
    return retrier_.Run("label_model.fit", options_.policy.limits, [&]() {
      return label_model_->Fit(train_selected, context_->num_classes);
    });
  }();
  if (fit.ok()) {
    if (fallback_label_model_ != nullptr) {
      // The configured model recovered; leave the degraded mode.
      recovery_.Record("label_model", "configured model fits again",
                       "leaving majority-vote fallback");
      fallback_label_model_.reset();
    }
  } else {
    // Degradation cascade step 2: aggregate with majority vote (the
    // extension of the metal_completion small-m fallback to the whole
    // pipeline) instead of dropping weak supervision entirely.
    auto majority = std::make_unique<MajorityVoteModel>();
    const Status mv_fit =
        majority->Fit(train_selected, context_->num_classes);
    if (mv_fit.ok()) {
      recovery_.Record("label_model", fit.ToString(),
                       "majority-vote aggregation");
      fallback_label_model_ = std::move(majority);
    } else {
      recovery_.Record("label_model",
                       fit.ToString() + "; majority vote also failed: " +
                           mv_fit.ToString(),
                       "AL-model-only pipeline");
      fallback_label_model_.reset();
      label_model_ready_ = false;
      return;
    }
  }

  const Status predictions = [&]() {
    TraceSpan span("label_model.predict");
    return LabelModelPredictions(train_selected, &lm_proba_train_,
                                 &lm_active_train_);
  }();
  if (!predictions.ok()) {
    if (fallback_label_model_ == nullptr) {
      // The configured model fit but predicts garbage (e.g. non-finite
      // probabilities): degrade to majority vote and retry once.
      auto majority = std::make_unique<MajorityVoteModel>();
      if (majority->Fit(train_selected, context_->num_classes).ok()) {
        recovery_.Record("label_model", predictions.ToString(),
                         "majority-vote aggregation");
        fallback_label_model_ = std::move(majority);
        if (LabelModelPredictions(train_selected, &lm_proba_train_,
                                  &lm_active_train_)
                .ok()) {
          label_model_ready_ = true;
          return;
        }
      }
    }
    recovery_.Record("label_model", predictions.ToString(),
                     "AL-model-only pipeline");
    fallback_label_model_.reset();
    label_model_ready_ = false;
    return;
  }
  label_model_ready_ = true;
}

std::vector<std::vector<double>> ActiveDp::AlProba(
    const std::vector<SparseVector>& features) const {
  std::vector<std::vector<double>> proba(features.size());
  if (!al_model_.has_value()) return proba;  // empty rows = no prediction
  for (size_t i = 0; i < features.size(); ++i) {
    proba[i] = al_model_->PredictProba(features[i]);
  }
  return proba;
}

Status ActiveDp::LabelModelPredictions(
    const LabelMatrix& matrix, std::vector<std::vector<double>>* proba,
    std::vector<bool>* active) const {
  const LabelModel* model = current_label_model();
  proba->assign(matrix.num_rows(), {});
  active->assign(matrix.num_rows(), false);
  matrix.EnsureRows();
  const int num_cols = matrix.num_cols();
  for (int i = 0; i < matrix.num_rows(); ++i) {
    ASSIGN_OR_RETURN((*proba)[i], model->PredictProbaSparse(
                                      matrix.ActiveRow(i), num_cols));
    (*active)[i] = matrix.AnyActive(i);
  }
  // Stage-boundary guard: nothing non-finite or unnormalized leaves the
  // label-model stage.
  return ValidateProbaRows(*proba, context_->num_classes,
                           "label-model predictions");
}

std::vector<std::vector<double>> ActiveDp::CurrentTrainingLabels() {
  const int n = context_->split->train.size();
  if (!label_model_ready_ && !al_model_.has_value()) {
    return std::vector<std::vector<double>>(n);
  }

  std::vector<std::vector<double>> lm_proba_train = lm_proba_train_;
  std::vector<bool> lm_active_train = lm_active_train_;
  if (!label_model_ready_) {
    lm_proba_train.assign(n, {});
    lm_active_train.assign(n, false);
  }

  if (!options_.use_confusion) {
    // DP-only inference: label-model predictions on covered rows.
    std::vector<std::vector<double>> soft(n);
    for (int i = 0; i < n; ++i) {
      if (lm_active_train[i]) soft[i] = lm_proba_train[i];
    }
    return soft;
  }

  // ConFusion: tune τ on validation, aggregate on train (Eq. 1).
  TraceSpan span("confusion");
  const std::vector<std::vector<double>> al_valid =
      AlProba(context_->valid_features);
  std::vector<std::vector<double>> lm_valid(context_->split->valid.size());
  std::vector<bool> lm_valid_active(context_->split->valid.size(), false);
  if (label_model_ready_) {
    const Status valid_predictions = LabelModelPredictions(
        valid_matrix_.SelectColumns(selected_), &lm_valid, &lm_valid_active);
    if (!valid_predictions.ok()) {
      // Tuning falls back to treating the label model as inactive on
      // validation; training predictions were already validated.
      recovery_.Record("confusion", valid_predictions.ToString(),
                       "tuning threshold without label-model votes");
      lm_valid.assign(context_->split->valid.size(), {});
      lm_valid_active.assign(context_->split->valid.size(), false);
    }
  }
  last_threshold_ =
      ConFusion::TuneThreshold(al_valid, lm_valid, lm_valid_active,
                               context_->valid_labels, options_.tune_objective);

  const std::vector<std::vector<double>> al_train =
      AlProba(context_->train_features);
  AggregatedLabels aggregated = ConFusion::Aggregate(
      al_train, lm_proba_train, lm_active_train, last_threshold_);
  return std::move(aggregated.soft);
}

}  // namespace activedp
