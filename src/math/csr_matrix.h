#ifndef ACTIVEDP_MATH_CSR_MATRIX_H_
#define ACTIVEDP_MATH_CSR_MATRIX_H_

#include <cstdint>
#include <vector>

#include "math/matrix.h"
#include "util/check.h"

namespace activedp {

/// Compressed-sparse-row matrix of doubles. The sparse counterpart of the
/// dense `Matrix`, sized for the pipeline's tall-skinny workloads: weak-label
/// spin matrices (n examples x m LFs, mostly abstains) and TF-IDF feature
/// rows. Column indices within a row are stored in ascending order, which is
/// what makes sparse traversals bitwise-equivalent to dense loops that skip
/// zeros in index order (see DESIGN.md §13).
class CsrMatrix {
 public:
  CsrMatrix() : rows_(0), cols_(0) { row_ptr_.push_back(0); }
  CsrMatrix(int rows, int cols) : rows_(0), cols_(cols) {
    CHECK_GE(rows, 0);
    CHECK_GE(cols, 0);
    row_ptr_.reserve(rows + 1);
    row_ptr_.push_back(0);
  }

  /// Builds from a dense matrix, dropping entries with |value| <= eps.
  static CsrMatrix FromDense(const Matrix& dense, double eps = 0.0);

  /// Bulk builder: fixes the row structure to `row_nnz` (prefix-summed into
  /// row_ptr) and allocates the index/value storage in one shot, replacing
  /// any existing contents. Callers then fill each row's slice through
  /// MutableRowIndices/MutableRowValues — from any thread, as long as each
  /// row has one writer — which is how the featurizer packs a corpus without
  /// a serial AppendRow loop.
  void SetRowExtents(const std::vector<int>& row_nnz);
  int32_t* MutableRowIndices(int r) {
    DCHECK(r >= 0 && r < rows_);
    return col_indices_.data() + row_ptr_[r];
  }
  double* MutableRowValues(int r) {
    DCHECK(r >= 0 && r < rows_);
    return values_.data() + row_ptr_[r];
  }

  /// Densifies (zeros where no stored entry).
  Matrix ToDense() const;

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  /// Appends one row given parallel (index, value) arrays with ascending
  /// indices in [0, cols). `count` may be 0 (an empty row).
  void AppendRow(const int32_t* indices, const double* values, int count);

  /// Reserves storage for an expected total nnz (builder hint).
  void ReserveNnz(int64_t nnz) {
    col_indices_.reserve(static_cast<size_t>(nnz));
    values_.reserve(static_cast<size_t>(nnz));
  }

  int RowNnz(int r) const {
    DCHECK(r >= 0 && r < rows_);
    return static_cast<int>(row_ptr_[r + 1] - row_ptr_[r]);
  }
  const int32_t* RowIndices(int r) const {
    DCHECK(r >= 0 && r < rows_);
    return col_indices_.data() + row_ptr_[r];
  }
  const double* RowValues(int r) const {
    DCHECK(r >= 0 && r < rows_);
    return values_.data() + row_ptr_[r];
  }

  /// Dot of row r with a dense vector w (w.size() >= cols()). Uses the
  /// canonical 4-lane sparse-dot kernel.
  double RowDot(int r, const double* w) const;

  /// this * v (v.size() == cols()); per-row sparse dots.
  std::vector<double> MultiplyVector(const std::vector<double>& v) const;

  /// A^T * A as a dense cols() x cols() matrix. Row-driven scatter with
  /// chunk-ordered partial accumulation (deterministic at any thread
  /// count). Intended for tall-skinny matrices (cols small).
  Matrix SelfInnerProduct() const;

 private:
  int rows_;
  int cols_;
  std::vector<int64_t> row_ptr_;     // size rows_+1
  std::vector<int32_t> col_indices_; // ascending within each row
  std::vector<double> values_;
};

}  // namespace activedp

#endif  // ACTIVEDP_MATH_CSR_MATRIX_H_
