#include "math/matrix.h"

#include <algorithm>
#include <cmath>

#include "math/kernels.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace activedp {
namespace {

/// Below this many scalar operations a parallel launch costs more than the
/// loop itself; stay serial.
constexpr long long kParallelOpThreshold = 1 << 15;

/// Row-blocked parallel loop over [0, rows): each block of rows is written
/// by exactly one chunk, computed with the same inner loops as the serial
/// code, so the result is bitwise identical at any thread count. `ops` is
/// the total scalar-op estimate used to pick the grain (and to skip the pool
/// for tiny matrices).
void ParallelRows(int rows, long long ops,
                  const std::function<void(int begin, int end)>& body) {
  ThreadPool* pool = ComputePool();
  if (pool == nullptr || ops < kParallelOpThreshold) {
    body(0, rows);
    return;
  }
  const long long ops_per_row = std::max<long long>(1, ops / std::max(rows, 1));
  const int min_grain = static_cast<int>(std::min<long long>(
      rows, std::max<long long>(1, kParallelOpThreshold / ops_per_row)));
  const Status status = ParallelForChunks(
      pool, rows, BoundedGrain(rows, min_grain, 1024), RunLimits::Unlimited(),
      "matrix",
      [&body](int /*chunk*/, int begin, int end) { body(begin, end); });
  CHECK(status.ok());  // unlimited budget: Check can never trip
}

}  // namespace

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  // Partitioned over *source* rows: each source row owns one destination
  // column, so writes never overlap.
  ParallelRows(rows_, static_cast<long long>(rows_) * cols_,
               [&](int begin, int end) {
                 for (int r = begin; r < end; ++r)
                   for (int c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
               });
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  // Row-partitioned: each output row is accumulated by one chunk with the
  // same k-inner order as the serial loop — bitwise identical at any thread
  // count.
  ParallelRows(
      rows_, static_cast<long long>(rows_) * cols_ * other.cols_,
      [&](int begin, int end) {
        for (int r = begin; r < end; ++r) {
          const double* a = RowPtr(r);
          double* o = out.RowPtr(r);
          for (int k = 0; k < cols_; ++k) {
            const double aval = a[k];
            if (aval == 0.0) continue;
            // Element-wise axpy: bitwise identical to the scalar loop at
            // every SIMD level (kernels.h).
            kernels::Axpy(aval, other.RowPtr(k), o, other.cols_);
          }
        }
      });
  return out;
}

std::vector<double> Matrix::MultiplyVector(const std::vector<double>& v) const {
  CHECK_EQ(static_cast<int>(v.size()), cols_);
  std::vector<double> out(rows_, 0.0);
  ParallelRows(rows_, static_cast<long long>(rows_) * cols_,
               [&](int begin, int end) {
                 for (int r = begin; r < end; ++r) {
                   out[r] = kernels::DotDense(RowPtr(r), v.data(), cols_);
                 }
               });
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  CHECK_EQ(rows_, other.rows_);
  CHECK_EQ(cols_, other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

void Matrix::AddInPlace(const Matrix& other) {
  CHECK_EQ(rows_, other.rows_);
  CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

Matrix Matrix::Subtract(const Matrix& other) const {
  CHECK_EQ(rows_, other.rows_);
  CHECK_EQ(cols_, other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::Scale(double factor) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= factor;
  return out;
}

double Matrix::MaxAbsDiff(const Matrix& a, const Matrix& b) {
  CHECK_EQ(a.rows_, b.rows_);
  CHECK_EQ(a.cols_, b.cols_);
  double max_diff = 0.0;
  for (size_t i = 0; i < a.data_.size(); ++i)
    max_diff = std::max(max_diff, std::fabs(a.data_[i] - b.data_[i]));
  return max_diff;
}

std::string Matrix::DebugString(int digits) const {
  std::string out;
  for (int r = 0; r < rows_; ++r) {
    out += "[";
    for (int c = 0; c < cols_; ++c) {
      if (c > 0) out += ", ";
      out += FormatDouble((*this)(r, c), digits);
    }
    out += "]\n";
  }
  return out;
}

}  // namespace activedp
