#include "math/vector_ops.h"

#include <algorithm>
#include <cmath>

#include "math/kernels.h"
#include "util/check.h"

namespace activedp {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  CHECK_EQ(a.size(), b.size());
  return kernels::DotDense(a.data(), b.data(), static_cast<int>(a.size()));
}

void Axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  CHECK_EQ(x.size(), y.size());
  kernels::Axpy(alpha, x.data(), y.data(), static_cast<int>(x.size()));
}

double Norm2(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

double Sum(const std::vector<double>& v) {
  return kernels::Sum(v.data(), static_cast<int>(v.size()));
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return Sum(v) / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double mean = Mean(v);
  double ss = 0.0;
  for (double x : v) ss += (x - mean) * (x - mean);
  return ss / static_cast<double>(v.size() - 1);
}

double LogSumExp(const std::vector<double>& logits) {
  CHECK(!logits.empty());
  const double max = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (double x : logits) sum += std::exp(x - max);
  return max + std::log(sum);
}

std::vector<double> Softmax(const std::vector<double>& logits) {
  CHECK(!logits.empty());
  std::vector<double> out = logits;
  kernels::SoftmaxInPlace(out.data(), static_cast<int>(out.size()));
  return out;
}

double Entropy(const std::vector<double>& p) {
  double h = 0.0;
  for (double pi : p) {
    if (pi > 0.0) h -= pi * std::log(pi);
  }
  return h;
}

int ArgMax(const std::vector<double>& v) {
  CHECK(!v.empty());
  return static_cast<int>(
      std::max_element(v.begin(), v.end()) - v.begin());
}

double Max(const std::vector<double>& v) {
  CHECK(!v.empty());
  return *std::max_element(v.begin(), v.end());
}

}  // namespace activedp
