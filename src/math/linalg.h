#ifndef ACTIVEDP_MATH_LINALG_H_
#define ACTIVEDP_MATH_LINALG_H_

#include <vector>

#include "math/matrix.h"
#include "util/result.h"

namespace activedp {

/// Cholesky factor L (lower triangular, A = L L^T) of a symmetric positive
/// definite matrix. Fails with InvalidArgument if A is not SPD (within
/// numerical tolerance).
Result<Matrix> Cholesky(const Matrix& a);

/// Solves A x = b for SPD A via Cholesky.
Result<std::vector<double>> SolveSpd(const Matrix& a,
                                     const std::vector<double>& b);

/// Inverse of an SPD matrix via Cholesky.
Result<Matrix> InverseSpd(const Matrix& a);

/// Solves L y = b with lower-triangular L (forward substitution).
std::vector<double> ForwardSubstitute(const Matrix& l,
                                      const std::vector<double>& b);

/// Solves L^T x = y with lower-triangular L (backward substitution).
std::vector<double> BackwardSubstitute(const Matrix& l,
                                       const std::vector<double>& y);

}  // namespace activedp

#endif  // ACTIVEDP_MATH_LINALG_H_
