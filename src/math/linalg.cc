#include "math/linalg.h"

#include <cmath>

namespace activedp {

Result<Matrix> Cholesky(const Matrix& a) {
  const int n = a.rows();
  if (a.cols() != n)
    return Status::InvalidArgument("Cholesky requires a square matrix");
  Matrix l(n, n);
  for (int j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (int k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0)
      return Status::InvalidArgument(
          "matrix is not positive definite (pivot <= 0)");
    l(j, j) = std::sqrt(diag);
    for (int i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (int k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / l(j, j);
    }
  }
  return l;
}

std::vector<double> ForwardSubstitute(const Matrix& l,
                                      const std::vector<double>& b) {
  const int n = l.rows();
  CHECK_EQ(static_cast<int>(b.size()), n);
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    double sum = b[i];
    for (int k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  return y;
}

std::vector<double> BackwardSubstitute(const Matrix& l,
                                       const std::vector<double>& y) {
  const int n = l.rows();
  CHECK_EQ(static_cast<int>(y.size()), n);
  std::vector<double> x(n);
  for (int i = n - 1; i >= 0; --i) {
    double sum = y[i];
    for (int k = i + 1; k < n; ++k) sum -= l(k, i) * x[k];
    x[i] = sum / l(i, i);
  }
  return x;
}

Result<std::vector<double>> SolveSpd(const Matrix& a,
                                     const std::vector<double>& b) {
  ASSIGN_OR_RETURN(Matrix l, Cholesky(a));
  return BackwardSubstitute(l, ForwardSubstitute(l, b));
}

Result<Matrix> InverseSpd(const Matrix& a) {
  const int n = a.rows();
  ASSIGN_OR_RETURN(Matrix l, Cholesky(a));
  Matrix inv(n, n);
  std::vector<double> e(n, 0.0);
  for (int c = 0; c < n; ++c) {
    e[c] = 1.0;
    std::vector<double> x = BackwardSubstitute(l, ForwardSubstitute(l, e));
    for (int r = 0; r < n; ++r) inv(r, c) = x[r];
    e[c] = 0.0;
  }
  return inv;
}

}  // namespace activedp
