#include "math/kernels.h"

#include <atomic>
#include <cmath>
#include <cstdlib>

#include "util/string_util.h"

#if defined(ACTIVEDP_SIMD_ENABLED) && \
    (defined(__x86_64__) || defined(__i386__))
#define ACTIVEDP_SIMD_X86 1
#include <emmintrin.h>  // SSE2
#else
#define ACTIVEDP_SIMD_X86 0
#endif

namespace activedp {
namespace kernels {

#if ACTIVEDP_SIMD_X86
// AVX2 variants live in kernels_avx2.cc (compiled with -mavx2 and
// -ffp-contract=off so no FMA contraction can break the lane contract).
namespace detail {
double DotDenseAvx2(const double* a, const double* b, int n);
double DotSparseAvx2(const int* indices, const double* values, int nnz,
                     const double* w);
double SumAvx2(const double* v, int n);
void AxpyAvx2(double alpha, const double* x, double* y, int n);
void ScaleAvx2(double* v, int n, double factor);
}  // namespace detail
#endif

namespace {

// ---- scalar variants: the canonical 4-lane association, spelled out -------

double DotDenseScalar(const double* a, const double* b, int n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += a[i] * b[i];
    l1 += a[i + 1] * b[i + 1];
    l2 += a[i + 2] * b[i + 2];
    l3 += a[i + 3] * b[i + 3];
  }
  double sum = (l0 + l1) + (l2 + l3);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

double DotSparseScalar(const int* indices, const double* values, int nnz,
                       const double* w) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  int k = 0;
  for (; k + 4 <= nnz; k += 4) {
    l0 += values[k] * w[indices[k]];
    l1 += values[k + 1] * w[indices[k + 1]];
    l2 += values[k + 2] * w[indices[k + 2]];
    l3 += values[k + 3] * w[indices[k + 3]];
  }
  double sum = (l0 + l1) + (l2 + l3);
  for (; k < nnz; ++k) sum += values[k] * w[indices[k]];
  return sum;
}

double SumScalar(const double* v, int n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += v[i];
    l1 += v[i + 1];
    l2 += v[i + 2];
    l3 += v[i + 3];
  }
  double sum = (l0 + l1) + (l2 + l3);
  for (; i < n; ++i) sum += v[i];
  return sum;
}

void AxpyScalar(double alpha, const double* x, double* y, int n) {
  for (int i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleScalar(double* v, int n, double factor) {
  for (int i = 0; i < n; ++i) v[i] *= factor;
}

#if ACTIVEDP_SIMD_X86

// ---- SSE2 variants: two 128-bit accumulators = the same 4 lanes -----------

// acc01 carries lanes 0/1, acc23 lanes 2/3; the horizontal combine below
// reproduces ((l0 + l1) + (l2 + l3)) exactly.
inline double CombineLanesSse2(__m128d acc01, __m128d acc23) {
  const __m128d hi01 = _mm_unpackhi_pd(acc01, acc01);
  const __m128d hi23 = _mm_unpackhi_pd(acc23, acc23);
  const double s01 = _mm_cvtsd_f64(_mm_add_sd(acc01, hi01));
  const double s23 = _mm_cvtsd_f64(_mm_add_sd(acc23, hi23));
  return s01 + s23;
}

double DotDenseSse2(const double* a, const double* b, int n) {
  __m128d acc01 = _mm_setzero_pd(), acc23 = _mm_setzero_pd();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    acc01 = _mm_add_pd(acc01,
                       _mm_mul_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i)));
    acc23 = _mm_add_pd(
        acc23, _mm_mul_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2)));
  }
  double sum = CombineLanesSse2(acc01, acc23);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

double DotSparseSse2(const int* indices, const double* values, int nnz,
                     const double* w) {
  __m128d acc01 = _mm_setzero_pd(), acc23 = _mm_setzero_pd();
  int k = 0;
  for (; k + 4 <= nnz; k += 4) {
    const __m128d w01 = _mm_set_pd(w[indices[k + 1]], w[indices[k]]);
    const __m128d w23 = _mm_set_pd(w[indices[k + 3]], w[indices[k + 2]]);
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(_mm_loadu_pd(values + k), w01));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(_mm_loadu_pd(values + k + 2), w23));
  }
  double sum = CombineLanesSse2(acc01, acc23);
  for (; k < nnz; ++k) sum += values[k] * w[indices[k]];
  return sum;
}

double SumSse2(const double* v, int n) {
  __m128d acc01 = _mm_setzero_pd(), acc23 = _mm_setzero_pd();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    acc01 = _mm_add_pd(acc01, _mm_loadu_pd(v + i));
    acc23 = _mm_add_pd(acc23, _mm_loadu_pd(v + i + 2));
  }
  double sum = CombineLanesSse2(acc01, acc23);
  for (; i < n; ++i) sum += v[i];
  return sum;
}

void AxpySse2(double alpha, const double* x, double* y, int n) {
  const __m128d va = _mm_set1_pd(alpha);
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d prod = _mm_mul_pd(va, _mm_loadu_pd(x + i));
    _mm_storeu_pd(y + i, _mm_add_pd(_mm_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleSse2(double* v, int n, double factor) {
  const __m128d vf = _mm_set1_pd(factor);
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(v + i, _mm_mul_pd(_mm_loadu_pd(v + i), vf));
  }
  for (; i < n; ++i) v[i] *= factor;
}

#endif  // ACTIVEDP_SIMD_X86

// ---- dispatch -------------------------------------------------------------

SimdLevel DetectMaxLevel() {
#if ACTIVEDP_SIMD_X86
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kSse2;  // baseline on x86-64
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel ClampToSupported(SimdLevel level) {
  const auto max = static_cast<int>(DetectMaxLevel());
  const int want = static_cast<int>(level);
  return static_cast<SimdLevel>(want < max ? want : max);
}

SimdLevel InitialLevel() {
  const char* env = std::getenv("ACTIVEDP_SIMD");
  if (env != nullptr && env[0] != '\0') {
    return ClampToSupported(ParseSimdLevel(env));
  }
  return DetectMaxLevel();
}

std::atomic<int>& LevelSlot() {
  static std::atomic<int> level{static_cast<int>(InitialLevel())};
  return level;
}

}  // namespace

SimdLevel ActiveSimdLevel() {
  return static_cast<SimdLevel>(LevelSlot().load(std::memory_order_relaxed));
}

SimdLevel MaxSupportedSimdLevel() { return DetectMaxLevel(); }

SimdLevel SetSimdLevel(SimdLevel level) {
  const SimdLevel applied = ClampToSupported(level);
  LevelSlot().store(static_cast<int>(applied), std::memory_order_relaxed);
  return applied;
}

std::string SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "scalar";
}

SimdLevel ParseSimdLevel(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "off" || lower == "scalar" || lower == "0") {
    return SimdLevel::kScalar;
  }
  if (lower == "sse2" || lower == "sse") return SimdLevel::kSse2;
  if (lower == "avx2" || lower == "avx") return SimdLevel::kAvx2;
  return MaxSupportedSimdLevel();  // "on" / "auto" / unknown
}

bool SimdCompiledIn() {
#if ACTIVEDP_SIMD_X86
  return true;
#else
  return false;
#endif
}

double DotDense(const double* a, const double* b, int n) {
#if ACTIVEDP_SIMD_X86
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx2:
      return detail::DotDenseAvx2(a, b, n);
    case SimdLevel::kSse2:
      return DotDenseSse2(a, b, n);
    case SimdLevel::kScalar:
      break;
  }
#endif
  return DotDenseScalar(a, b, n);
}

double DotSparse(const int* indices, const double* values, int nnz,
                 const double* w) {
#if ACTIVEDP_SIMD_X86
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx2:
      return detail::DotSparseAvx2(indices, values, nnz, w);
    case SimdLevel::kSse2:
      return DotSparseSse2(indices, values, nnz, w);
    case SimdLevel::kScalar:
      break;
  }
#endif
  return DotSparseScalar(indices, values, nnz, w);
}

double Sum(const double* v, int n) {
#if ACTIVEDP_SIMD_X86
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx2:
      return detail::SumAvx2(v, n);
    case SimdLevel::kSse2:
      return SumSse2(v, n);
    case SimdLevel::kScalar:
      break;
  }
#endif
  return SumScalar(v, n);
}

void Axpy(double alpha, const double* x, double* y, int n) {
#if ACTIVEDP_SIMD_X86
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx2:
      detail::AxpyAvx2(alpha, x, y, n);
      return;
    case SimdLevel::kSse2:
      AxpySse2(alpha, x, y, n);
      return;
    case SimdLevel::kScalar:
      break;
  }
#endif
  AxpyScalar(alpha, x, y, n);
}

void Scale(double* v, int n, double factor) {
#if ACTIVEDP_SIMD_X86
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx2:
      detail::ScaleAvx2(v, n, factor);
      return;
    case SimdLevel::kSse2:
      ScaleSse2(v, n, factor);
      return;
    case SimdLevel::kScalar:
      break;
  }
#endif
  ScaleScalar(v, n, factor);
}

void SoftmaxInPlace(double* v, int n) {
  if (n <= 0) return;
  // Max scan and exp are shared scalar code in every variant: libm's exp is
  // the only bitwise-stable exp, and a lane-ordered max could differ from
  // the sequential one only in the sign of a zero (exp maps both to 1.0).
  double max = v[0];
  for (int i = 1; i < n; ++i) {
    if (v[i] > max) max = v[i];
  }
  for (int i = 0; i < n; ++i) v[i] = std::exp(v[i] - max);
  const double total = Sum(v, n);
  for (int i = 0; i < n; ++i) v[i] /= total;
}

}  // namespace kernels
}  // namespace activedp
