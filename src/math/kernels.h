#ifndef ACTIVEDP_MATH_KERNELS_H_
#define ACTIVEDP_MATH_KERNELS_H_

#include <string>

namespace activedp {
namespace kernels {

/// Vectorized numeric kernels for the pipeline hot paths (dot products,
/// axpy, softmax) with runtime CPU dispatch.
///
/// Determinism contract: every variant of a reducing kernel implements the
/// same *canonical 4-lane association*
///
///   lane[l] = sum over i of term(4*i + l)      (l = 0..3)
///   result  = ((lane[0] + lane[1]) + (lane[2] + lane[3])) + tail terms
///
/// which is exactly what one 256-bit AVX2 accumulator (4 doubles) produces,
/// what two 128-bit SSE2 accumulators produce, and what the scalar fallback
/// computes with four explicit accumulators. No variant uses FMA (the AVX2
/// translation unit is compiled with -ffp-contract=off), so scalar, SSE2 and
/// AVX2 results are bitwise identical for identical inputs. Element-wise
/// kernels (axpy, scale) have no reduction and are trivially identical.
/// Flipping the SIMD level is therefore purely a throughput knob — FNV
/// digests over kernel outputs never change.
///
/// Dispatch: the level is picked once at startup from CPUID (best supported
/// of AVX2 > SSE2 > scalar), can be capped with the ACTIVEDP_SIMD environment
/// variable ("off"/"scalar", "sse2", "avx2", "on"/"auto"), and can be forced
/// at runtime with SetSimdLevel (tests). Building with -DACTIVEDP_SIMD=OFF
/// compiles the SIMD translation units out entirely; only kScalar remains.

enum class SimdLevel {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Currently active dispatch level.
SimdLevel ActiveSimdLevel();

/// Highest level this binary + CPU supports (kScalar when compiled with
/// -DACTIVEDP_SIMD=OFF or on non-x86 hosts).
SimdLevel MaxSupportedSimdLevel();

/// Forces the dispatch level, clamped to MaxSupportedSimdLevel(). Returns
/// the level actually applied. Thread-safe; intended for tests and benches.
SimdLevel SetSimdLevel(SimdLevel level);

/// "scalar" / "sse2" / "avx2".
std::string SimdLevelName(SimdLevel level);

/// Parses a level name (or "off"/"on"/"auto"); falls back to
/// MaxSupportedSimdLevel() on "on"/"auto"/unknown.
SimdLevel ParseSimdLevel(const std::string& name);

/// True when the SIMD variants were compiled in (-DACTIVEDP_SIMD=ON on x86).
bool SimdCompiledIn();

/// sum_i a[i] * b[i] (canonical 4-lane association).
double DotDense(const double* a, const double* b, int n);

/// sum_k values[k] * w[indices[k]] (canonical 4-lane association). Indices
/// must be valid positions into w.
double DotSparse(const int* indices, const double* values, int nnz,
                 const double* w);

/// sum_i v[i] (canonical 4-lane association).
double Sum(const double* v, int n);

/// y[i] += alpha * x[i]. Element-wise: bitwise identical at every level.
void Axpy(double alpha, const double* x, double* y, int n);

/// v[i] *= factor. Element-wise.
void Scale(double* v, int n, double factor);

/// In-place stable softmax: v[i] = exp(v[i] - max) / sum_j exp(v[j] - max).
/// The max scan and exp calls are shared scalar code (libm exp is the only
/// bitwise-stable choice); the normalizing sum uses the canonical 4-lane
/// reduction and the division is element-wise, so the result is bitwise
/// identical at every level.
void SoftmaxInPlace(double* v, int n);

}  // namespace kernels
}  // namespace activedp

#endif  // ACTIVEDP_MATH_KERNELS_H_
