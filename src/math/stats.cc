#include "math/stats.h"

#include <cmath>

#include "math/vector_ops.h"
#include "util/check.h"

namespace activedp {

std::vector<double> ColumnMeans(const Matrix& data) {
  const int n = data.rows();
  const int d = data.cols();
  std::vector<double> means(d, 0.0);
  for (int r = 0; r < n; ++r) {
    const double* row = data.RowPtr(r);
    for (int c = 0; c < d; ++c) means[c] += row[c];
  }
  if (n > 0) {
    for (double& m : means) m /= n;
  }
  return means;
}

Matrix CovarianceMatrix(const Matrix& data) {
  const int n = data.rows();
  const int d = data.cols();
  CHECK_GE(n, 2) << "covariance needs at least 2 observations";
  const std::vector<double> means = ColumnMeans(data);
  Matrix cov(d, d);
  for (int r = 0; r < n; ++r) {
    const double* row = data.RowPtr(r);
    for (int i = 0; i < d; ++i) {
      const double di = row[i] - means[i];
      if (di == 0.0) continue;
      for (int j = i; j < d; ++j) {
        cov(i, j) += di * (row[j] - means[j]);
      }
    }
  }
  const double denom = static_cast<double>(n - 1);
  for (int i = 0; i < d; ++i) {
    for (int j = i; j < d; ++j) {
      cov(i, j) /= denom;
      cov(j, i) = cov(i, j);
    }
  }
  return cov;
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  CHECK_EQ(a.size(), b.size());
  const size_t n = a.size();
  if (n < 2) return 0.0;
  const double ma = Mean(a);
  const double mb = Mean(b);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

double BinaryEntropy(double p) {
  // Clamp so that off-by-epsilon probabilities from upstream float error
  // (p = -1e-17, p = 1 + 1e-17, or NaN) yield 0 instead of NaN/negative
  // entropy.
  if (!(p > 0.0)) return 0.0;
  if (!(p < 1.0)) return 0.0;
  return -p * std::log(p) - (1.0 - p) * std::log(1.0 - p);
}

}  // namespace activedp
