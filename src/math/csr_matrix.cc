#include "math/csr_matrix.h"

#include <cmath>

#include "math/kernels.h"
#include "util/thread_pool.h"

namespace activedp {

CsrMatrix CsrMatrix::FromDense(const Matrix& dense, double eps) {
  CsrMatrix out(dense.rows(), dense.cols());
  std::vector<int32_t> indices;
  std::vector<double> values;
  indices.reserve(dense.cols());
  values.reserve(dense.cols());
  for (int r = 0; r < dense.rows(); ++r) {
    indices.clear();
    values.clear();
    const double* row = dense.RowPtr(r);
    for (int c = 0; c < dense.cols(); ++c) {
      if (std::fabs(row[c]) > eps) {
        indices.push_back(c);
        values.push_back(row[c]);
      }
    }
    out.AppendRow(indices.data(), values.data(),
                  static_cast<int>(indices.size()));
  }
  return out;
}

Matrix CsrMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    double* row = out.RowPtr(r);
    const int64_t begin = row_ptr_[r], end = row_ptr_[r + 1];
    for (int64_t k = begin; k < end; ++k) row[col_indices_[k]] = values_[k];
  }
  return out;
}

void CsrMatrix::SetRowExtents(const std::vector<int>& row_nnz) {
  rows_ = static_cast<int>(row_nnz.size());
  row_ptr_.assign(1, 0);
  row_ptr_.reserve(rows_ + 1);
  int64_t total = 0;
  for (const int count : row_nnz) {
    CHECK_GE(count, 0);
    total += count;
    row_ptr_.push_back(total);
  }
  col_indices_.resize(static_cast<size_t>(total));
  values_.resize(static_cast<size_t>(total));
}

void CsrMatrix::AppendRow(const int32_t* indices, const double* values,
                          int count) {
  CHECK_GE(count, 0);
  for (int k = 0; k < count; ++k) {
    DCHECK(indices[k] >= 0 && indices[k] < cols_);
    DCHECK(k == 0 || indices[k] > indices[k - 1]);
  }
  col_indices_.insert(col_indices_.end(), indices, indices + count);
  values_.insert(values_.end(), values, values + count);
  row_ptr_.push_back(static_cast<int64_t>(col_indices_.size()));
  ++rows_;
}

double CsrMatrix::RowDot(int r, const double* w) const {
  return kernels::DotSparse(RowIndices(r), RowValues(r), RowNnz(r), w);
}

std::vector<double> CsrMatrix::MultiplyVector(
    const std::vector<double>& v) const {
  CHECK_EQ(static_cast<int>(v.size()), cols_);
  std::vector<double> out(rows_, 0.0);
  ThreadPool* pool = ComputePool();
  const double* w = v.data();
  if (pool == nullptr || nnz() < (1 << 15)) {
    for (int r = 0; r < rows_; ++r) out[r] = RowDot(r, w);
    return out;
  }
  const Status status = ParallelForChunks(
      pool, rows_, BoundedGrain(rows_, 256, 1024), RunLimits::Unlimited(),
      "csr_matvec", [&](int /*chunk*/, int begin, int end) {
        for (int r = begin; r < end; ++r) out[r] = RowDot(r, w);
      });
  CHECK(status.ok());
  return out;
}

Matrix CsrMatrix::SelfInnerProduct() const {
  Matrix out(cols_, cols_);
  ThreadPool* pool = ComputePool();
  // Each chunk scatters its rows into a private accumulator; partials are
  // combined in chunk order, matching the serial row order bitwise.
  auto accumulate_rows = [&](Matrix& acc, int begin, int end) {
    for (int r = begin; r < end; ++r) {
      const int32_t* idx = RowIndices(r);
      const double* val = RowValues(r);
      const int count = RowNnz(r);
      for (int a = 0; a < count; ++a) {
        double* acc_row = acc.RowPtr(idx[a]);
        const double va = val[a];
        for (int b = 0; b < count; ++b) acc_row[idx[b]] += va * val[b];
      }
    }
  };
  if (pool == nullptr || nnz() < (1 << 12)) {
    accumulate_rows(out, 0, rows_);
    return out;
  }
  const int grain = BoundedGrain(rows_, 256, 256);
  const int num_chunks = NumChunks(rows_, grain);
  std::vector<Matrix> partials(num_chunks);
  const Status status = ParallelForChunks(
      pool, rows_, grain, RunLimits::Unlimited(), "csr_ata",
      [&](int chunk, int begin, int end) {
        partials[chunk] = Matrix(cols_, cols_);
        accumulate_rows(partials[chunk], begin, end);
      });
  CHECK(status.ok());
  for (int c = 0; c < num_chunks; ++c) out.AddInPlace(partials[c]);
  return out;
}

}  // namespace activedp
