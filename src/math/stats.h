#ifndef ACTIVEDP_MATH_STATS_H_
#define ACTIVEDP_MATH_STATS_H_

#include <vector>

#include "math/matrix.h"

namespace activedp {

/// Column means of a data matrix (rows = observations).
std::vector<double> ColumnMeans(const Matrix& data);

/// Sample covariance matrix (denominator n-1) of a data matrix with rows as
/// observations. Requires at least 2 rows.
Matrix CovarianceMatrix(const Matrix& data);

/// Pearson correlation of two equal-length samples; 0 when either variance
/// vanishes.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Binary-entropy helper: entropy of {p, 1-p} in nats.
double BinaryEntropy(double p);

}  // namespace activedp

#endif  // ACTIVEDP_MATH_STATS_H_
