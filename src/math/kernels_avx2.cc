// AVX2 kernel variants. This translation unit is compiled with
// -mavx2 -ffp-contract=off (and without -mfma): fused multiply-add would
// round differently from the scalar mul-then-add sequence and break the
// bitwise identity between dispatch levels (see kernels.h).
#include "math/kernels.h"

#if defined(ACTIVEDP_SIMD_ENABLED) && \
    (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

namespace activedp {
namespace kernels {
namespace detail {

namespace {

// One 256-bit accumulator holds exactly the canonical lanes 0..3; the
// combine below is ((l0 + l1) + (l2 + l3)).
inline double CombineLanesAvx2(__m256d acc) {
  const __m128d lo = _mm256_castpd256_pd128(acc);   // l0, l1
  const __m128d hi = _mm256_extractf128_pd(acc, 1); // l2, l3
  const double s01 = _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
  const double s23 = _mm_cvtsd_f64(_mm_add_sd(hi, _mm_unpackhi_pd(hi, hi)));
  return s01 + s23;
}

}  // namespace

double DotDenseAvx2(const double* a, const double* b, int n) {
  __m256d acc = _mm256_setzero_pd();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  double sum = CombineLanesAvx2(acc);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

double DotSparseAvx2(const int* indices, const double* values, int nnz,
                     const double* w) {
  __m256d acc = _mm256_setzero_pd();
  int k = 0;
  for (; k + 4 <= nnz; k += 4) {
    const __m128i idx = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(indices + k));
    const __m256d gathered = _mm256_i32gather_pd(w, idx, sizeof(double));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(values + k),
                                           gathered));
  }
  double sum = CombineLanesAvx2(acc);
  for (; k < nnz; ++k) sum += values[k] * w[indices[k]];
  return sum;
}

double SumAvx2(const double* v, int n) {
  __m256d acc = _mm256_setzero_pd();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(v + i));
  }
  double sum = CombineLanesAvx2(acc);
  for (; i < n; ++i) sum += v[i];
  return sum;
}

void AxpyAvx2(double alpha, const double* x, double* y, int n) {
  const __m256d va = _mm256_set1_pd(alpha);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleAvx2(double* v, int n, double factor) {
  const __m256d vf = _mm256_set1_pd(factor);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(v + i, _mm256_mul_pd(_mm256_loadu_pd(v + i), vf));
  }
  for (; i < n; ++i) v[i] *= factor;
}

}  // namespace detail
}  // namespace kernels
}  // namespace activedp

#endif  // ACTIVEDP_SIMD_ENABLED && x86
