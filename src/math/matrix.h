#ifndef ACTIVEDP_MATH_MATRIX_H_
#define ACTIVEDP_MATH_MATRIX_H_

#include <string>
#include <vector>

#include "util/check.h"

namespace activedp {

/// Dense row-major matrix of doubles. Small and dependency-free; sized for
/// the library's needs (covariance/precision matrices up to a few hundred
/// rows, model weight matrices).
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, fill) {
    CHECK_GE(rows, 0);
    CHECK_GE(cols, 0);
  }

  static Matrix Identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& operator()(int r, int c) {
    DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  /// Pointer to the start of row r.
  double* RowPtr(int r) { return &data_[static_cast<size_t>(r) * cols_]; }
  const double* RowPtr(int r) const {
    return &data_[static_cast<size_t>(r) * cols_];
  }

  void Fill(double value);

  Matrix Transpose() const;

  /// this * other; dimensions must agree.
  Matrix Multiply(const Matrix& other) const;

  /// this * v (v.size() == cols()).
  std::vector<double> MultiplyVector(const std::vector<double>& v) const;

  /// Element-wise this + other.
  Matrix Add(const Matrix& other) const;

  /// Element-wise this += other, without a copy. Used by the ordered
  /// per-chunk reductions in the parallel label-model fits.
  void AddInPlace(const Matrix& other);

  /// Element-wise this - other.
  Matrix Subtract(const Matrix& other) const;

  /// Element-wise scaling.
  Matrix Scale(double factor) const;

  /// Max |a(i,j) - b(i,j)|.
  static double MaxAbsDiff(const Matrix& a, const Matrix& b);

  /// Multi-line debug rendering.
  std::string DebugString(int digits = 4) const;

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

}  // namespace activedp

#endif  // ACTIVEDP_MATH_MATRIX_H_
