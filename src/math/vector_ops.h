#ifndef ACTIVEDP_MATH_VECTOR_OPS_H_
#define ACTIVEDP_MATH_VECTOR_OPS_H_

#include <vector>

namespace activedp {

/// Inner product of equal-length vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// y += alpha * x.
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);

/// Euclidean norm.
double Norm2(const std::vector<double>& v);

/// Sum of elements.
double Sum(const std::vector<double>& v);

/// Arithmetic mean (0 for empty input).
double Mean(const std::vector<double>& v);

/// Sample variance (denominator n-1; 0 when n < 2).
double Variance(const std::vector<double>& v);

/// log(sum_i exp(v_i)) computed stably.
double LogSumExp(const std::vector<double>& logits);

/// Softmax of `logits` (stable); output sums to 1.
std::vector<double> Softmax(const std::vector<double>& logits);

/// Shannon entropy -sum p_i log p_i (natural log); zero entries contribute 0.
/// This is Eq. 3 of the paper.
double Entropy(const std::vector<double>& p);

/// Index of the maximum element (first on ties). Requires non-empty input.
int ArgMax(const std::vector<double>& v);

/// Maximum element. Requires non-empty input.
double Max(const std::vector<double>& v);

}  // namespace activedp

#endif  // ACTIVEDP_MATH_VECTOR_OPS_H_
