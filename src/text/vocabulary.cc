#include "text/vocabulary.h"

#include <algorithm>
#include <set>

#include "util/check.h"

namespace activedp {

Vocabulary Vocabulary::FromState(std::vector<std::string> words,
                                 std::vector<int> doc_frequencies) {
  CHECK_EQ(words.size(), doc_frequencies.size());
  Vocabulary vocab;
  vocab.words_ = std::move(words);
  vocab.doc_frequency_ = std::move(doc_frequencies);
  vocab.word_to_id_.reserve(vocab.words_.size());
  for (size_t i = 0; i < vocab.words_.size(); ++i) {
    vocab.word_to_id_[vocab.words_[i]] = static_cast<int>(i);
  }
  return vocab;
}

Vocabulary Vocabulary::Build(
    const std::vector<std::vector<std::string>>& documents, int min_doc_count,
    int max_size) {
  std::unordered_map<std::string, int> doc_counts;
  for (const auto& doc : documents) {
    std::set<std::string_view> seen;
    for (const auto& token : doc) seen.insert(token);
    for (std::string_view token : seen) ++doc_counts[std::string(token)];
  }

  std::vector<std::pair<std::string, int>> kept;
  kept.reserve(doc_counts.size());
  for (auto& [word, count] : doc_counts) {
    if (count >= min_doc_count) kept.emplace_back(word, count);
  }
  // Most document-frequent first; lexicographic tiebreak for determinism.
  std::sort(kept.begin(), kept.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (max_size > 0 && static_cast<int>(kept.size()) > max_size) {
    kept.resize(max_size);
  }

  Vocabulary vocab;
  vocab.words_.reserve(kept.size());
  vocab.doc_frequency_.reserve(kept.size());
  for (auto& [word, count] : kept) {
    vocab.word_to_id_[word] = static_cast<int>(vocab.words_.size());
    vocab.words_.push_back(word);
    vocab.doc_frequency_.push_back(count);
  }
  return vocab;
}

int Vocabulary::GetId(std::string_view word) const {
  auto it = word_to_id_.find(std::string(word));
  return it == word_to_id_.end() ? kUnknownId : it->second;
}

const std::string& Vocabulary::GetWord(int id) const {
  CHECK_GE(id, 0);
  CHECK_LT(id, size());
  return words_[id];
}

}  // namespace activedp
