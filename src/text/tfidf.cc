#include "text/tfidf.h"

#include <cmath>

#include "util/check.h"

namespace activedp {

TfidfFeaturizer TfidfFeaturizer::Fit(const Dataset& train,
                                     TfidfOptions options) {
  const int vocab_size = train.vocabulary().size();
  CHECK_GT(vocab_size, 0) << "TF-IDF requires a built vocabulary";
  std::vector<int> df(vocab_size, 0);
  for (const auto& example : train.examples()) {
    for (const auto& [term, count] : example.term_counts) {
      if (term >= 0 && term < vocab_size) ++df[term];
    }
  }
  TfidfFeaturizer featurizer;
  featurizer.options_ = options;
  featurizer.idf_.resize(vocab_size);
  const double n = static_cast<double>(train.size());
  for (int t = 0; t < vocab_size; ++t) {
    featurizer.idf_[t] = std::log((1.0 + n) / (1.0 + df[t])) + 1.0;
  }
  return featurizer;
}

SparseVector TfidfFeaturizer::Transform(const Example& example) const {
  SparseVector out;
  out.indices.reserve(example.term_counts.size());
  out.values.reserve(example.term_counts.size());
  for (const auto& [term, count] : example.term_counts) {
    if (term < 0 || term >= dim()) continue;  // out-of-vocabulary
    double tf = static_cast<double>(count);
    if (options_.sublinear_tf) tf = 1.0 + std::log(tf);
    out.PushBack(term, tf * idf_[term]);
  }
  if (options_.l2_normalize) L2Normalize(out);
  return out;
}

}  // namespace activedp
