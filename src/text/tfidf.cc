#include "text/tfidf.h"

#include <array>
#include <cmath>

#include "util/check.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace activedp {

TfidfFeaturizer TfidfFeaturizer::Fit(const Dataset& train,
                                     TfidfOptions options) {
  const int vocab_size = train.vocabulary().size();
  CHECK_GT(vocab_size, 0) << "TF-IDF requires a built vocabulary";
  const int n = train.size();
  TraceSpan span("tfidf.fit");
  span.AddArg("rows", n);
  span.AddArg("vocab", vocab_size);
  // Document frequencies via per-chunk partial counts combined in chunk
  // order. Integer sums are exact under any grouping, so the result is
  // bitwise identical at every thread count. Chunk count is capped so the
  // partial df vectors stay small next to the corpus itself.
  const int grain = BoundedGrain(n, 1024, 16);
  const int chunks = NumChunks(n, grain);
  std::vector<std::vector<int>> partial(chunks);
  const Status status = ParallelForChunks(
      ComputePool(), n, grain, RunLimits::Unlimited(), "tfidf.fit",
      [&](int chunk, int begin, int end) {
        std::vector<int>& df = partial[chunk];
        df.assign(vocab_size, 0);
        for (int i = begin; i < end; ++i) {
          for (const auto& [term, count] : train.example(i).term_counts) {
            if (term >= 0 && term < vocab_size) ++df[term];
          }
        }
      });
  CHECK(status.ok());  // unlimited budget: Check can never trip
  std::vector<int> df(vocab_size, 0);
  for (const auto& part : partial) {
    for (int t = 0; t < vocab_size; ++t) df[t] += part[t];
  }

  TfidfFeaturizer featurizer;
  featurizer.options_ = options;
  featurizer.idf_.resize(vocab_size);
  const double num_docs = static_cast<double>(n);
  for (int t = 0; t < vocab_size; ++t) {
    featurizer.idf_[t] = std::log((1.0 + num_docs) / (1.0 + df[t])) + 1.0;
  }
  return featurizer;
}

TfidfFeaturizer TfidfFeaturizer::FromState(TfidfOptions options,
                                           std::vector<double> idf) {
  TfidfFeaturizer featurizer;
  featurizer.options_ = options;
  featurizer.idf_ = std::move(idf);
  return featurizer;
}

SparseVector TfidfFeaturizer::Transform(const Example& example) const {
  // Term counts are almost always tiny integers and std::log dominates the
  // sublinear-tf cost, so 1 + log(k) is served from a table for small k.
  // Entries are computed with the same std::log call, so the output is
  // bitwise identical to the direct computation.
  static constexpr int kTfTableSize = 64;
  static const std::array<double, kTfTableSize> kSublinearTf = [] {
    std::array<double, kTfTableSize> table{};
    for (int k = 1; k < kTfTableSize; ++k) {
      table[k] = 1.0 + std::log(static_cast<double>(k));
    }
    return table;
  }();

  SparseVector out;
  out.indices.reserve(example.term_counts.size());
  out.values.reserve(example.term_counts.size());
  for (const auto& [term, count] : example.term_counts) {
    if (term < 0 || term >= dim()) continue;  // out-of-vocabulary
    if (count <= 0) continue;  // sublinear 1 + log(0) would give -inf
    double tf;
    if (options_.sublinear_tf) {
      tf = count < kTfTableSize ? kSublinearTf[count]
                                : 1.0 + std::log(static_cast<double>(count));
    } else {
      tf = static_cast<double>(count);
    }
    out.PushBack(term, tf * idf_[term]);
  }
  if (options_.l2_normalize) L2Normalize(out);
  return out;
}

}  // namespace activedp
