#ifndef ACTIVEDP_TEXT_TOKENIZER_H_
#define ACTIVEDP_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace activedp {

/// Options for the rule-based tokenizer used throughout the library.
struct TokenizerOptions {
  bool lowercase = true;
  /// Drop tokens shorter than this many characters.
  int min_token_length = 1;
  /// Drop tokens found in the built-in English stop-word list.
  bool remove_stopwords = false;
};

/// Splits text into word tokens on non-alphanumeric boundaries, with optional
/// lower-casing and stop-word removal. Deterministic and allocation-light;
/// this is the tokenizer the paper's keyword LFs and TF-IDF features rely on.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  std::vector<std::string> Tokenize(std::string_view text) const;

 private:
  TokenizerOptions options_;
};

}  // namespace activedp

#endif  // ACTIVEDP_TEXT_TOKENIZER_H_
