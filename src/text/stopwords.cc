#include "text/stopwords.h"

#include <algorithm>
#include <array>

namespace activedp {
namespace {

// Sorted for binary search; keep alphabetical when editing.
constexpr std::array<std::string_view, 64> kStopwords = {
    "a",    "about", "after", "all",  "an",    "and",  "any",  "are",
    "as",   "at",    "be",    "been", "but",   "by",   "can",  "could",
    "did",  "do",    "does",  "for",  "from",  "had",  "has",  "have",
    "he",   "her",   "his",   "i",    "if",    "in",   "into", "is",
    "it",   "its",   "just",  "me",   "my",    "no",   "not",  "of",
    "on",   "or",    "our",   "she",  "so",    "some", "that", "the",
    "their", "them", "then",  "they", "this",  "to",   "up",   "was",
    "we",   "were",  "what",  "when", "which", "will", "with", "you",
};

}  // namespace

bool IsStopword(std::string_view token) {
  return std::binary_search(kStopwords.begin(), kStopwords.end(), token);
}

}  // namespace activedp
