#ifndef ACTIVEDP_TEXT_TFIDF_H_
#define ACTIVEDP_TEXT_TFIDF_H_

#include <vector>

#include "data/dataset.h"
#include "data/example.h"

namespace activedp {

struct TfidfOptions {
  /// Use 1 + log(tf) instead of raw term frequency.
  bool sublinear_tf = true;
  /// L2-normalize each document vector.
  bool l2_normalize = true;
};

/// TF-IDF featurizer over a dataset's vocabulary. Fit computes smoothed
/// inverse document frequencies on the training split; Transform maps an
/// example's term counts to a sparse vector of dimension vocabulary-size.
/// This is the text representation the paper's downstream model uses
/// (§4.1.3: "we extract the TF-IDF representation of the input text").
class TfidfFeaturizer {
 public:
  TfidfFeaturizer() = default;

  /// Computes idf from the training documents: idf = log((1+n)/(1+df)) + 1.
  static TfidfFeaturizer Fit(const Dataset& train, TfidfOptions options = {});

  /// Rebuilds a featurizer from exported state; Transform is bitwise
  /// identical to the featurizer the state came from.
  static TfidfFeaturizer FromState(TfidfOptions options,
                                   std::vector<double> idf);

  SparseVector Transform(const Example& example) const;

  int dim() const { return static_cast<int>(idf_.size()); }

  double idf(int term) const { return idf_[term]; }
  const std::vector<double>& idf_values() const { return idf_; }
  const TfidfOptions& options() const { return options_; }

 private:
  TfidfOptions options_;
  std::vector<double> idf_;
};

}  // namespace activedp

#endif  // ACTIVEDP_TEXT_TFIDF_H_
