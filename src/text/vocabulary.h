#ifndef ACTIVEDP_TEXT_VOCABULARY_H_
#define ACTIVEDP_TEXT_VOCABULARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace activedp {

/// Maps between word strings and dense integer ids. Built once over a corpus
/// (with frequency/size pruning) and then immutable.
class Vocabulary {
 public:
  static constexpr int kUnknownId = -1;

  Vocabulary() = default;

  /// Builds from tokenized documents, keeping words that appear in at least
  /// `min_doc_count` documents; if `max_size` > 0 keeps only the most
  /// document-frequent `max_size` words (ties broken lexicographically).
  static Vocabulary Build(
      const std::vector<std::vector<std::string>>& documents,
      int min_doc_count = 1, int max_size = 0);

  /// Rebuilds a vocabulary from exported state (parallel word /
  /// document-frequency arrays); ids are assigned by position.
  static Vocabulary FromState(std::vector<std::string> words,
                              std::vector<int> doc_frequencies);

  /// Id for `word`, or kUnknownId if out of vocabulary.
  int GetId(std::string_view word) const;

  /// Word for a valid id.
  const std::string& GetWord(int id) const;

  int size() const { return static_cast<int>(words_.size()); }

  /// Number of documents (from the build corpus) containing each word.
  int doc_frequency(int id) const { return doc_frequency_[id]; }

  const std::vector<std::string>& words() const { return words_; }
  const std::vector<int>& doc_frequencies() const { return doc_frequency_; }

 private:
  std::vector<std::string> words_;
  std::vector<int> doc_frequency_;
  std::unordered_map<std::string, int> word_to_id_;
};

}  // namespace activedp

#endif  // ACTIVEDP_TEXT_VOCABULARY_H_
