#include "text/tokenizer.h"

#include <cctype>

#include "text/stopwords.h"

namespace activedp {

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (static_cast<int>(current.size()) >= options_.min_token_length &&
        !(options_.remove_stopwords && IsStopword(current))) {
      tokens.push_back(current);
    }
    current.clear();
  };
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current += options_.lowercase
                     ? static_cast<char>(std::tolower(c))
                     : raw;
    } else if (!current.empty()) {
      flush();
    }
  }
  if (!current.empty()) flush();
  return tokens;
}

}  // namespace activedp
