#ifndef ACTIVEDP_TEXT_STOPWORDS_H_
#define ACTIVEDP_TEXT_STOPWORDS_H_

#include <string_view>

namespace activedp {

/// True if `token` (already lower-cased) is in the built-in English
/// stop-word list (a compact subset of the usual NLTK list).
bool IsStopword(std::string_view token);

}  // namespace activedp

#endif  // ACTIVEDP_TEXT_STOPWORDS_H_
