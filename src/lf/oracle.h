#ifndef ACTIVEDP_LF_ORACLE_H_
#define ACTIVEDP_LF_ORACLE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "data/dataset.h"
#include "lf/lf_candidates.h"
#include "util/rng.h"

namespace activedp {

struct SimulatedUserOptions {
  /// Accuracy threshold t for candidate LFs (τ_acc = 0.6 in §4.1.4).
  double accuracy_threshold = 0.6;
  /// Probability that a query's label is flipped before LF generation,
  /// simulating label noise (§4.3.3 / Table 5).
  double label_noise = 0.0;
  uint64_t seed = 7;
};

/// Simulates the human expert of §4.1.4 using ground-truth training labels.
/// Supports all three supervision types the paper's protocol needs: LF
/// creation (ActiveDP, Nemo), LF verification (IWS), and instance labelling
/// (uncertainty sampling, Revising LF).
class SimulatedUser {
 public:
  SimulatedUser(const Dataset& train, SimulatedUserOptions options);

  /// LF-creation response for a query instance: builds the candidate set
  /// {λ anchored at x with train accuracy > t}, removes LFs returned in
  /// earlier iterations, and samples one with probability proportional to
  /// coverage. Returns nullopt when no candidate remains (the iteration is
  /// then a no-op, as with a human who cannot think of a rule).
  ///
  /// With label noise enabled, the query's label is first flipped with the
  /// configured probability and candidates are generated *for the flipped
  /// label*, so the returned LF misfires on the query instance (§4.3.3).
  std::optional<LfCandidate> CreateLf(int query_index);

  /// IWS-style verification: "accurate" iff the candidate's ground-truth
  /// training accuracy exceeds the threshold.
  bool VerifyLf(const LfCandidate& candidate) const;

  /// Instance-labelling response: the true label of the instance.
  int LabelInstance(int index) const;

  /// The dataset's candidate-LF space (shared with SEU/IWS machinery).
  const LfSpace& lf_space() const { return *lf_space_; }

  int num_queries_answered() const { return num_queries_answered_; }

 private:
  const Dataset* train_;
  SimulatedUserOptions options_;
  std::unique_ptr<LfSpace> lf_space_;
  Rng rng_;
  std::set<std::string> returned_keys_;
  int num_queries_answered_ = 0;
};

}  // namespace activedp

#endif  // ACTIVEDP_LF_ORACLE_H_
