#include "lf/lf_applier.h"

#include "util/check.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace activedp {

void LabelMatrix::AddColumn(std::vector<int8_t> column) {
  CHECK_EQ(static_cast<int>(column.size()), num_rows_);
  columns_.push_back(std::move(column));
}

std::vector<int> LabelMatrix::Row(int row) const {
  std::vector<int> out(columns_.size());
  for (size_t j = 0; j < columns_.size(); ++j) out[j] = columns_[j][row];
  return out;
}

std::vector<int> LabelMatrix::Row(int row, const std::vector<int>& cols) const {
  std::vector<int> out(cols.size());
  for (size_t j = 0; j < cols.size(); ++j) out[j] = columns_[cols[j]][row];
  return out;
}

bool LabelMatrix::AnyActive(int row) const {
  for (const auto& col : columns_) {
    if (col[row] != kAbstain) return true;
  }
  return false;
}

bool LabelMatrix::AnyActive(int row, const std::vector<int>& cols) const {
  for (int j : cols) {
    if (columns_[j][row] != kAbstain) return true;
  }
  return false;
}

LabelMatrix LabelMatrix::SelectColumns(const std::vector<int>& cols) const {
  LabelMatrix out(num_rows_);
  for (int j : cols) {
    CHECK_GE(j, 0);
    CHECK_LT(j, num_cols());
    out.AddColumn(columns_[j]);
  }
  return out;
}

LabelMatrix LabelMatrix::SelectRows(const std::vector<int>& rows) const {
  LabelMatrix out(static_cast<int>(rows.size()));
  for (const auto& col : columns_) {
    std::vector<int8_t> selected(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      CHECK_GE(rows[i], 0);
      CHECK_LT(rows[i], num_rows_);
      selected[i] = col[rows[i]];
    }
    out.AddColumn(std::move(selected));
  }
  return out;
}

double LabelMatrix::OverallCoverage() const {
  if (num_rows_ == 0) return 0.0;
  int active = 0;
  for (int i = 0; i < num_rows_; ++i) {
    if (AnyActive(i)) ++active;
  }
  return static_cast<double>(active) / num_rows_;
}

std::vector<int8_t> ApplyLf(const LabelFunction& lf, const Dataset& dataset) {
  const int n = dataset.size();
  std::vector<int8_t> out(n);
  // Row-partitioned: every entry is written by exactly one chunk, so the
  // matrix is bitwise identical at any thread count.
  const Status status = ParallelForChunks(
      ComputePool(), n, BoundedGrain(n, 256, 1024), RunLimits::Unlimited(),
      "lf.apply", [&](int /*chunk*/, int begin, int end) {
        for (int i = begin; i < end; ++i) {
          out[i] = static_cast<int8_t>(lf.Apply(dataset.example(i)));
        }
      });
  CHECK(status.ok());  // unlimited budget: Check can never trip
  return out;
}

LabelMatrix ApplyLfs(const std::vector<LfPtr>& lfs, const Dataset& dataset) {
  TraceSpan span("lf.apply_all");
  span.AddArg("lfs", static_cast<int64_t>(lfs.size()));
  span.AddArg("rows", dataset.size());
  LabelMatrix matrix(dataset.size());
  for (const auto& lf : lfs) matrix.AddColumn(ApplyLf(*lf, dataset));
  return matrix;
}

LfColumnStats ComputeColumnStats(const std::vector<int8_t>& column,
                                 const std::vector<int>& labels) {
  CHECK_EQ(column.size(), labels.size());
  LfColumnStats stats;
  int correct = 0;
  for (size_t i = 0; i < column.size(); ++i) {
    if (column[i] == kAbstain) continue;
    ++stats.activations;
    if (column[i] == labels[i]) ++correct;
  }
  if (!column.empty()) {
    stats.coverage = static_cast<double>(stats.activations) / column.size();
  }
  if (stats.activations > 0) {
    stats.accuracy = static_cast<double>(correct) / stats.activations;
  }
  return stats;
}

}  // namespace activedp
