#include "lf/lf_applier.h"

#include <unordered_map>
#include <utility>

#include "util/check.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace activedp {

void LabelMatrix::AddColumn(std::vector<int8_t> column) {
  CHECK_EQ(static_cast<int>(column.size()), num_rows_);
  for (int i = 0; i < num_rows_; ++i) {
    if (column[i] != kAbstain) ++active_count_[i];
  }
  columns_.push_back(std::move(column));
  rows_built_ = false;
}

void LabelMatrix::Set(int row, int col, int value) {
  const int8_t old = columns_[col][row];
  if (old != kAbstain) --active_count_[row];
  if (value != kAbstain) ++active_count_[row];
  columns_[col][row] = static_cast<int8_t>(value);
  rows_built_ = false;
}

std::vector<int> LabelMatrix::Row(int row) const {
  std::vector<int> out(columns_.size());
  for (size_t j = 0; j < columns_.size(); ++j) out[j] = columns_[j][row];
  return out;
}

std::vector<int> LabelMatrix::Row(int row, const std::vector<int>& cols) const {
  std::vector<int> out(cols.size());
  for (size_t j = 0; j < cols.size(); ++j) out[j] = columns_[cols[j]][row];
  return out;
}

bool LabelMatrix::AnyActive(int row, const std::vector<int>& cols) const {
  for (int j : cols) {
    if (columns_[j][row] != kAbstain) return true;
  }
  return false;
}

void LabelMatrix::EnsureRows() const {
  if (rows_built_) return;
  row_ptr_.assign(num_rows_ + 1, 0);
  int64_t total = 0;
  for (int i = 0; i < num_rows_; ++i) {
    row_ptr_[i] = total;
    total += active_count_[i];
  }
  row_ptr_[num_rows_] = total;
  row_cols_.resize(total);
  row_labels_.resize(total);
  // Column-major sweep with a per-row write cursor: each row's entries land
  // in ascending column order because columns are visited in order.
  std::vector<int64_t> cursor(row_ptr_.begin(), row_ptr_.end() - 1);
  for (size_t j = 0; j < columns_.size(); ++j) {
    const std::vector<int8_t>& col = columns_[j];
    for (int i = 0; i < num_rows_; ++i) {
      if (col[i] == kAbstain) continue;
      row_cols_[cursor[i]] = static_cast<int32_t>(j);
      row_labels_[cursor[i]] = col[i];
      ++cursor[i];
    }
  }
  rows_built_ = true;
}

ActiveRowView LabelMatrix::ActiveRow(int row) const {
  DCHECK(rows_built_);
  DCHECK(row >= 0 && row < num_rows_);
  ActiveRowView view;
  view.cols = row_cols_.data() + row_ptr_[row];
  view.labels = row_labels_.data() + row_ptr_[row];
  view.nnz = static_cast<int>(row_ptr_[row + 1] - row_ptr_[row]);
  return view;
}

CsrMatrix LabelMatrix::SpinCsr() const {
  EnsureRows();
  CsrMatrix out(num_rows_, num_cols());
  out.ReserveNnz(row_ptr_[num_rows_]);
  std::vector<double> spins;
  for (int i = 0; i < num_rows_; ++i) {
    const ActiveRowView row = ActiveRow(i);
    spins.resize(row.nnz);
    for (int k = 0; k < row.nnz; ++k) {
      spins[k] = row.labels[k] == 1 ? 1.0 : -1.0;
    }
    out.AppendRow(row.cols, spins.data(), row.nnz);
  }
  return out;
}

LabelMatrix LabelMatrix::SelectColumns(const std::vector<int>& cols) const {
  LabelMatrix out(num_rows_);
  for (int j : cols) {
    CHECK_GE(j, 0);
    CHECK_LT(j, num_cols());
    out.AddColumn(columns_[j]);
  }
  return out;
}

LabelMatrix LabelMatrix::SelectRows(const std::vector<int>& rows) const {
  LabelMatrix out(static_cast<int>(rows.size()));
  for (const auto& col : columns_) {
    std::vector<int8_t> selected(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      CHECK_GE(rows[i], 0);
      CHECK_LT(rows[i], num_rows_);
      selected[i] = col[rows[i]];
    }
    out.AddColumn(std::move(selected));
  }
  return out;
}

double LabelMatrix::OverallCoverage() const {
  if (num_rows_ == 0) return 0.0;
  int active = 0;
  for (int i = 0; i < num_rows_; ++i) {
    if (active_count_[i] > 0) ++active;
  }
  return static_cast<double>(active) / num_rows_;
}

std::vector<int8_t> ApplyLf(const LabelFunction& lf, const Dataset& dataset) {
  const int n = dataset.size();
  std::vector<int8_t> out(n);
  // Row-partitioned: every entry is written by exactly one chunk, so the
  // matrix is bitwise identical at any thread count.
  const Status status = ParallelForChunks(
      ComputePool(), n, BoundedGrain(n, 256, 1024), RunLimits::Unlimited(),
      "lf.apply", [&](int /*chunk*/, int begin, int end) {
        for (int i = begin; i < end; ++i) {
          out[i] = static_cast<int8_t>(lf.Apply(dataset.example(i)));
        }
      });
  CHECK(status.ok());  // unlimited budget: Check can never trip
  return out;
}

namespace {

/// Inverted-index application for all-keyword LF sets: instead of
/// num_lfs virtual Apply calls (each a binary search) per example, one pass
/// over the example's term counts looks up which columns fire. Produces the
/// exact same matrix as the per-LF path.
LabelMatrix ApplyKeywordLfs(const std::vector<LfPtr>& lfs,
                            const Dataset& dataset) {
  const int n = dataset.size();
  const int m = static_cast<int>(lfs.size());
  std::unordered_map<int, std::vector<std::pair<int, int8_t>>> by_token;
  by_token.reserve(m);
  for (int j = 0; j < m; ++j) {
    const auto* kw = static_cast<const KeywordLf*>(lfs[j].get());
    by_token[kw->token_id()].emplace_back(j, static_cast<int8_t>(kw->label()));
  }
  std::vector<std::vector<int8_t>> cols(
      m, std::vector<int8_t>(n, static_cast<int8_t>(kAbstain)));
  const Status status = ParallelForChunks(
      ComputePool(), n, BoundedGrain(n, 256, 1024), RunLimits::Unlimited(),
      "lf.apply", [&](int /*chunk*/, int begin, int end) {
        for (int i = begin; i < end; ++i) {
          for (const auto& [token, count] : dataset.example(i).term_counts) {
            (void)count;  // presence decides, matching Example::HasToken
            const auto it = by_token.find(token);
            if (it == by_token.end()) continue;
            for (const auto& [col, label] : it->second) cols[col][i] = label;
          }
        }
      });
  CHECK(status.ok());
  LabelMatrix matrix(n);
  for (int j = 0; j < m; ++j) matrix.AddColumn(std::move(cols[j]));
  return matrix;
}

}  // namespace

LabelMatrix ApplyLfs(const std::vector<LfPtr>& lfs, const Dataset& dataset) {
  TraceSpan span("lf.apply_all");
  span.AddArg("lfs", static_cast<int64_t>(lfs.size()));
  span.AddArg("rows", dataset.size());
  bool all_keyword = !lfs.empty();
  for (const auto& lf : lfs) {
    if (dynamic_cast<const KeywordLf*>(lf.get()) == nullptr) {
      all_keyword = false;
      break;
    }
  }
  if (all_keyword) return ApplyKeywordLfs(lfs, dataset);
  LabelMatrix matrix(dataset.size());
  for (const auto& lf : lfs) matrix.AddColumn(ApplyLf(*lf, dataset));
  return matrix;
}

LfColumnStats ComputeColumnStats(const std::vector<int8_t>& column,
                                 const std::vector<int>& labels) {
  CHECK_EQ(column.size(), labels.size());
  LfColumnStats stats;
  int correct = 0;
  for (size_t i = 0; i < column.size(); ++i) {
    if (column[i] == kAbstain) continue;
    ++stats.activations;
    if (column[i] == labels[i]) ++correct;
  }
  if (!column.empty()) {
    stats.coverage = static_cast<double>(stats.activations) / column.size();
  }
  if (stats.activations > 0) {
    stats.accuracy = static_cast<double>(correct) / stats.activations;
  }
  return stats;
}

}  // namespace activedp
