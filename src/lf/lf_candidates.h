#ifndef ACTIVEDP_LF_LF_CANDIDATES_H_
#define ACTIVEDP_LF_LF_CANDIDATES_H_

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "lf/label_function.h"

namespace activedp {

/// One candidate LF together with its (ground-truth) training-set statistics,
/// which the simulated user uses to decide what a human would plausibly
/// return (§4.1.4).
struct LfCandidate {
  LfPtr lf;
  double train_accuracy = 0.0;
  double coverage = 0.0;
};

/// The candidate LF space of a dataset: keyword LFs λ_{w,y} for text,
/// decision stumps λ_{j,v,op,y} for tabular (§4.1.4). Also serves IWS, which
/// needs a global pool of candidates to rank for expert verification.
class LfSpace {
 public:
  virtual ~LfSpace() = default;

  /// Candidates anchored at `example`: keyword LFs whose keyword appears in
  /// the example, or stumps whose threshold equals one of the example's
  /// feature values. Filters to train_accuracy > min_accuracy; when
  /// target_label >= 0, keeps only LFs voting that class.
  virtual std::vector<LfCandidate> CandidatesFor(const Example& example,
                                                 double min_accuracy,
                                                 int target_label) const = 0;

  /// Global candidate pool with at least `min_coverage` (keyword LFs for all
  /// vocabulary words; stumps on a per-feature quantile grid).
  virtual std::vector<LfCandidate> AllCandidates(double min_coverage) const = 0;
};

/// Builds the task-appropriate LF space from the training split (with its
/// ground-truth labels, which only the simulated user may consult).
std::unique_ptr<LfSpace> BuildLfSpace(const Dataset& train);

}  // namespace activedp

#endif  // ACTIVEDP_LF_LF_CANDIDATES_H_
