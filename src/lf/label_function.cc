#include "lf/label_function.h"

#include "util/string_util.h"

namespace activedp {

std::string KeywordLf::Name() const {
  return word_ + " -> class" + std::to_string(label());
}

std::string KeywordLf::Key() const {
  return "kw:" + std::to_string(token_id_) + ":" + std::to_string(label());
}

std::string ThresholdLf::Name() const {
  const char* op = op_ == StumpOp::kLessEqual ? "<=" : ">=";
  return "f" + std::to_string(feature_) + " " + op + " " +
         FormatDouble(threshold_, 4) + " -> class" + std::to_string(label());
}

std::string ThresholdLf::Key() const {
  const char* op = op_ == StumpOp::kLessEqual ? "le" : "ge";
  return "st:" + std::to_string(feature_) + ":" + op + ":" +
         FormatDouble(threshold_, 6) + ":" + std::to_string(label());
}

}  // namespace activedp
