#ifndef ACTIVEDP_LF_LF_APPLIER_H_
#define ACTIVEDP_LF_LF_APPLIER_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "lf/label_function.h"

namespace activedp {

/// The weak-label matrix W with W[i][j] = λ_j(x_i) ∈ {kAbstain, 0..C-1}
/// (§2.1). Stored column-major (one column per LF) because frameworks add
/// one LF per iteration; entries are int8 to keep full-scale matrices small.
class LabelMatrix {
 public:
  explicit LabelMatrix(int num_rows) : num_rows_(num_rows) {}

  int num_rows() const { return num_rows_; }
  int num_cols() const { return static_cast<int>(columns_.size()); }

  /// Appends one LF's outputs (length must equal num_rows).
  void AddColumn(std::vector<int8_t> column);

  int At(int row, int col) const { return columns_[col][row]; }

  /// Overwrites one entry (used by the Revising-LF baseline, which corrects
  /// LF outputs on human-labelled instances).
  void Set(int row, int col, int value) {
    columns_[col][row] = static_cast<int8_t>(value);
  }

  const std::vector<int8_t>& column(int col) const { return columns_[col]; }

  /// Weak labels of one row across all columns.
  std::vector<int> Row(int row) const;

  /// Weak labels of one row restricted to `cols`.
  std::vector<int> Row(int row, const std::vector<int>& cols) const;

  /// True if any LF fires on the row (optionally restricted to `cols`).
  bool AnyActive(int row) const;
  bool AnyActive(int row, const std::vector<int>& cols) const;

  /// New matrix containing only the selected columns, in the given order.
  LabelMatrix SelectColumns(const std::vector<int>& cols) const;

  /// New matrix containing only the selected rows, in the given order.
  LabelMatrix SelectRows(const std::vector<int>& rows) const;

  /// Fraction of rows with at least one non-abstain entry.
  double OverallCoverage() const;

 private:
  int num_rows_;
  std::vector<std::vector<int8_t>> columns_;
};

/// Applies one LF to every example of `dataset`.
std::vector<int8_t> ApplyLf(const LabelFunction& lf, const Dataset& dataset);

/// Applies a set of LFs, producing the label matrix.
LabelMatrix ApplyLfs(const std::vector<LfPtr>& lfs, const Dataset& dataset);

/// Coverage and accuracy statistics of one LF column against ground truth.
struct LfColumnStats {
  int activations = 0;
  double coverage = 0.0;
  /// Accuracy over activated rows; 0 when never activated.
  double accuracy = 0.0;
};

LfColumnStats ComputeColumnStats(const std::vector<int8_t>& column,
                                 const std::vector<int>& labels);

}  // namespace activedp

#endif  // ACTIVEDP_LF_LF_APPLIER_H_
