#ifndef ACTIVEDP_LF_LF_APPLIER_H_
#define ACTIVEDP_LF_LF_APPLIER_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "lf/label_function.h"
#include "math/csr_matrix.h"

namespace activedp {

/// One row of the weak-label matrix restricted to its non-abstain entries:
/// ascending column ids with the weak label each LF voted. Valid until the
/// owning LabelMatrix is next mutated.
struct ActiveRowView {
  const int32_t* cols = nullptr;
  const int8_t* labels = nullptr;
  int nnz = 0;
};

/// The weak-label matrix W with W[i][j] = λ_j(x_i) ∈ {kAbstain, 0..C-1}
/// (§2.1). Stored column-major (one column per LF) because frameworks add
/// one LF per iteration; entries are int8 to keep full-scale matrices small.
///
/// Since most entries are abstains, the matrix also maintains a per-row
/// active count (O(1) AnyActive, O(n) coverage) and a lazily built CSR view
/// of the non-abstain entries (ActiveRow), which is what the label models
/// iterate instead of scanning all num_cols() entries per row.
class LabelMatrix {
 public:
  explicit LabelMatrix(int num_rows)
      : num_rows_(num_rows), active_count_(num_rows, 0) {}

  int num_rows() const { return num_rows_; }
  int num_cols() const { return static_cast<int>(columns_.size()); }

  /// Appends one LF's outputs (length must equal num_rows).
  void AddColumn(std::vector<int8_t> column);

  int At(int row, int col) const { return columns_[col][row]; }

  /// Overwrites one entry (used by the Revising-LF baseline, which corrects
  /// LF outputs on human-labelled instances).
  void Set(int row, int col, int value);

  const std::vector<int8_t>& column(int col) const { return columns_[col]; }

  /// Weak labels of one row across all columns.
  std::vector<int> Row(int row) const;

  /// Weak labels of one row restricted to `cols`.
  std::vector<int> Row(int row, const std::vector<int>& cols) const;

  /// True if any LF fires on the row (optionally restricted to `cols`).
  /// The all-columns overload is O(1) via the maintained active counts.
  bool AnyActive(int row) const { return active_count_[row] > 0; }
  bool AnyActive(int row, const std::vector<int>& cols) const;

  /// Number of non-abstain entries in the row. O(1).
  int ActiveCount(int row) const { return active_count_[row]; }

  /// Builds (or refreshes) the row-major CSR view of non-abstain entries.
  /// Must be called on the owning thread before ActiveRow is used — in
  /// particular before handing rows to a parallel region; the build itself
  /// is not thread-safe, reads afterwards are.
  void EnsureRows() const;

  /// Non-abstain entries of one row in ascending column order. Requires a
  /// prior EnsureRows() since the last mutation.
  ActiveRowView ActiveRow(int row) const;

  /// The spin encoding of the matrix as CSR: one row per example holding
  /// ToSpin(label) = +1 / -1 at each active column (abstains dropped).
  /// Binary tasks only (labels 0/1); multiclass callers stay on At().
  CsrMatrix SpinCsr() const;

  /// New matrix containing only the selected columns, in the given order.
  LabelMatrix SelectColumns(const std::vector<int>& cols) const;

  /// New matrix containing only the selected rows, in the given order.
  LabelMatrix SelectRows(const std::vector<int>& rows) const;

  /// Fraction of rows with at least one non-abstain entry. O(num_rows).
  double OverallCoverage() const;

 private:
  int num_rows_;
  std::vector<std::vector<int8_t>> columns_;
  std::vector<int32_t> active_count_;  // non-abstain entries per row

  // Lazily built CSR view over the non-abstain entries (see EnsureRows).
  mutable bool rows_built_ = false;
  mutable std::vector<int64_t> row_ptr_;
  mutable std::vector<int32_t> row_cols_;
  mutable std::vector<int8_t> row_labels_;
};

/// Applies one LF to every example of `dataset`.
std::vector<int8_t> ApplyLf(const LabelFunction& lf, const Dataset& dataset);

/// Applies a set of LFs, producing the label matrix. When every LF is a
/// KeywordLf, uses an inverted token -> (column, label) index and a single
/// pass over each example's term counts instead of per-LF virtual calls —
/// the output is identical either way.
LabelMatrix ApplyLfs(const std::vector<LfPtr>& lfs, const Dataset& dataset);

/// Coverage and accuracy statistics of one LF column against ground truth.
struct LfColumnStats {
  int activations = 0;
  double coverage = 0.0;
  /// Accuracy over activated rows; 0 when never activated.
  double accuracy = 0.0;
};

LfColumnStats ComputeColumnStats(const std::vector<int8_t>& column,
                                 const std::vector<int>& labels);

}  // namespace activedp

#endif  // ACTIVEDP_LF_LF_APPLIER_H_
