#ifndef ACTIVEDP_LF_LABEL_FUNCTION_H_
#define ACTIVEDP_LF_LABEL_FUNCTION_H_

#include <memory>
#include <string>
#include <vector>

#include "data/example.h"

namespace activedp {

/// Output of a label function that declines to label an instance.
inline constexpr int kAbstain = -1;

/// A label function (LF): a weak supervision source that labels a subset of
/// instances and abstains elsewhere (§2.1). Implementations are immutable;
/// frameworks share them via LfPtr.
class LabelFunction {
 public:
  virtual ~LabelFunction() = default;

  /// The class this LF votes for when it fires.
  explicit LabelFunction(int label) : label_(label) {}

  /// Weak label for `example`: `label()` or kAbstain.
  virtual int Apply(const Example& example) const = 0;

  /// Human-readable description, e.g. "check -> SPAM".
  virtual std::string Name() const = 0;

  /// Stable identity string used to de-duplicate LFs across iterations.
  virtual std::string Key() const = 0;

  int label() const { return label_; }

 private:
  int label_;
};

using LfPtr = std::shared_ptr<const LabelFunction>;

/// Keyword LF for text tasks: votes `label` when the document contains the
/// keyword (by vocabulary id), abstains otherwise — the λ_{w,y} family of
/// §4.1.4.
class KeywordLf : public LabelFunction {
 public:
  KeywordLf(int token_id, std::string word, int label)
      : LabelFunction(label), token_id_(token_id), word_(std::move(word)) {}

  int Apply(const Example& example) const override {
    return example.HasToken(token_id_) ? label() : kAbstain;
  }
  std::string Name() const override;
  std::string Key() const override;

  int token_id() const { return token_id_; }
  const std::string& word() const { return word_; }

 private:
  int token_id_;
  std::string word_;
};

enum class StumpOp { kLessEqual, kGreaterEqual };

/// Decision-stump LF for tabular tasks: votes `label` when feature
/// `feature` satisfies (x_j <= v) or (x_j >= v), abstains otherwise — the
/// λ_{j,v,op,y} family of §4.1.4.
class ThresholdLf : public LabelFunction {
 public:
  ThresholdLf(int feature, double threshold, StumpOp op, int label)
      : LabelFunction(label),
        feature_(feature),
        threshold_(threshold),
        op_(op) {}

  int Apply(const Example& example) const override {
    const double v = example.features[feature_];
    const bool fires =
        op_ == StumpOp::kLessEqual ? v <= threshold_ : v >= threshold_;
    return fires ? label() : kAbstain;
  }
  std::string Name() const override;
  std::string Key() const override;

  int feature() const { return feature_; }
  double threshold() const { return threshold_; }
  StumpOp op() const { return op_; }

 private:
  int feature_;
  double threshold_;
  StumpOp op_;
};

}  // namespace activedp

#endif  // ACTIVEDP_LF_LABEL_FUNCTION_H_
