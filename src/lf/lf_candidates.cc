#include "lf/lf_candidates.h"

#include <algorithm>

#include "util/check.h"

namespace activedp {
namespace {

/// Keyword-LF space over the training vocabulary, backed by per-token
/// per-class document frequencies.
class TextLfSpace : public LfSpace {
 public:
  explicit TextLfSpace(const Dataset& train)
      : num_classes_(train.meta().num_classes),
        num_docs_(train.size()),
        vocab_(&train.vocabulary()) {
    const int v = vocab_->size();
    class_df_.assign(num_classes_, std::vector<int>(v, 0));
    total_df_.assign(v, 0);
    for (const auto& example : train.examples()) {
      for (const auto& [term, count] : example.term_counts) {
        if (term < 0 || term >= v) continue;
        ++class_df_[example.label][term];
        ++total_df_[term];
      }
    }
  }

  std::vector<LfCandidate> CandidatesFor(const Example& example,
                                         double min_accuracy,
                                         int target_label) const override {
    std::vector<LfCandidate> out;
    for (const auto& [term, count] : example.term_counts) {
      if (term < 0 || term >= vocab_->size() || total_df_[term] == 0) continue;
      for (int y = 0; y < num_classes_; ++y) {
        if (target_label >= 0 && y != target_label) continue;
        LfCandidate candidate = MakeCandidate(term, y);
        if (candidate.train_accuracy > min_accuracy) {
          out.push_back(std::move(candidate));
        }
      }
    }
    return out;
  }

  std::vector<LfCandidate> AllCandidates(double min_coverage) const override {
    std::vector<LfCandidate> out;
    for (int term = 0; term < vocab_->size(); ++term) {
      if (total_df_[term] == 0) continue;
      const double coverage =
          static_cast<double>(total_df_[term]) / num_docs_;
      if (coverage < min_coverage) continue;
      for (int y = 0; y < num_classes_; ++y) {
        out.push_back(MakeCandidate(term, y));
      }
    }
    return out;
  }

 private:
  LfCandidate MakeCandidate(int term, int y) const {
    LfCandidate candidate;
    candidate.lf =
        std::make_shared<KeywordLf>(term, vocab_->GetWord(term), y);
    candidate.coverage = static_cast<double>(total_df_[term]) / num_docs_;
    candidate.train_accuracy =
        static_cast<double>(class_df_[y][term]) / total_df_[term];
    return candidate;
  }

  int num_classes_;
  int num_docs_;
  const Vocabulary* vocab_;
  std::vector<std::vector<int>> class_df_;  // [class][term]
  std::vector<int> total_df_;
};

/// Decision-stump space over tabular features, backed by per-feature sorted
/// values with per-class prefix counts so any threshold's accuracy/coverage
/// is O(log n).
class TabularLfSpace : public LfSpace {
 public:
  explicit TabularLfSpace(const Dataset& train)
      : num_classes_(train.meta().num_classes), num_rows_(train.size()) {
    CHECK_GT(num_rows_, 0);
    const int d = static_cast<int>(train.example(0).features.size());
    sorted_values_.resize(d);
    class_prefix_.resize(d);
    class_totals_.assign(num_classes_, 0);
    for (const auto& e : train.examples()) ++class_totals_[e.label];

    std::vector<std::pair<double, int>> rows(num_rows_);
    for (int j = 0; j < d; ++j) {
      for (int i = 0; i < num_rows_; ++i) {
        rows[i] = {train.example(i).features[j], train.example(i).label};
      }
      std::sort(rows.begin(), rows.end());
      sorted_values_[j].resize(num_rows_);
      class_prefix_[j].assign(num_classes_,
                              std::vector<int>(num_rows_ + 1, 0));
      for (int i = 0; i < num_rows_; ++i) {
        sorted_values_[j][i] = rows[i].first;
        for (int y = 0; y < num_classes_; ++y) {
          class_prefix_[j][y][i + 1] =
              class_prefix_[j][y][i] + (rows[i].second == y ? 1 : 0);
        }
      }
    }
  }

  std::vector<LfCandidate> CandidatesFor(const Example& example,
                                         double min_accuracy,
                                         int target_label) const override {
    std::vector<LfCandidate> out;
    const int d = static_cast<int>(example.features.size());
    for (int j = 0; j < d; ++j) {
      for (StumpOp op : {StumpOp::kLessEqual, StumpOp::kGreaterEqual}) {
        for (int y = 0; y < num_classes_; ++y) {
          if (target_label >= 0 && y != target_label) continue;
          LfCandidate candidate =
              MakeCandidate(j, example.features[j], op, y);
          if (candidate.coverage > 0.0 &&
              candidate.train_accuracy > min_accuracy) {
            out.push_back(std::move(candidate));
          }
        }
      }
    }
    return out;
  }

  std::vector<LfCandidate> AllCandidates(double min_coverage) const override {
    // Thresholds on a per-feature decile grid.
    std::vector<LfCandidate> out;
    const int d = static_cast<int>(sorted_values_.size());
    for (int j = 0; j < d; ++j) {
      for (int decile = 1; decile <= 9; ++decile) {
        const double v =
            sorted_values_[j][num_rows_ * decile / 10];
        for (StumpOp op : {StumpOp::kLessEqual, StumpOp::kGreaterEqual}) {
          for (int y = 0; y < num_classes_; ++y) {
            LfCandidate candidate = MakeCandidate(j, v, op, y);
            if (candidate.coverage >= min_coverage) {
              out.push_back(std::move(candidate));
            }
          }
        }
      }
    }
    return out;
  }

 private:
  LfCandidate MakeCandidate(int feature, double threshold, StumpOp op,
                            int y) const {
    const auto& values = sorted_values_[feature];
    int covered = 0, correct = 0;
    if (op == StumpOp::kLessEqual) {
      const int idx = static_cast<int>(
          std::upper_bound(values.begin(), values.end(), threshold) -
          values.begin());
      covered = idx;
      correct = class_prefix_[feature][y][idx];
    } else {
      const int idx = static_cast<int>(
          std::lower_bound(values.begin(), values.end(), threshold) -
          values.begin());
      covered = num_rows_ - idx;
      correct = class_totals_[y] - class_prefix_[feature][y][idx];
    }
    LfCandidate candidate;
    candidate.lf = std::make_shared<ThresholdLf>(feature, threshold, op, y);
    candidate.coverage = static_cast<double>(covered) / num_rows_;
    candidate.train_accuracy =
        covered > 0 ? static_cast<double>(correct) / covered : 0.0;
    return candidate;
  }

  int num_classes_;
  int num_rows_;
  std::vector<std::vector<double>> sorted_values_;            // [feature]
  std::vector<std::vector<std::vector<int>>> class_prefix_;   // [feature][class]
  std::vector<int> class_totals_;
};

}  // namespace

std::unique_ptr<LfSpace> BuildLfSpace(const Dataset& train) {
  if (train.meta().task == TaskType::kTextClassification) {
    return std::make_unique<TextLfSpace>(train);
  }
  return std::make_unique<TabularLfSpace>(train);
}

}  // namespace activedp
