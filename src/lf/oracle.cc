#include "lf/oracle.h"

#include <utility>
#include <vector>

#include "util/check.h"
#include "util/fault.h"

namespace activedp {

SimulatedUser::SimulatedUser(const Dataset& train,
                             SimulatedUserOptions options)
    : train_(&train),
      options_(options),
      lf_space_(BuildLfSpace(train)),
      rng_(options.seed) {}

std::optional<LfCandidate> SimulatedUser::CreateLf(int query_index) {
  CHECK_GE(query_index, 0);
  CHECK_LT(query_index, train_->size());
  ++num_queries_answered_;
  if (CheckFault("oracle.create_lf", {FaultKind::kEmptyResponse}) ==
      FaultKind::kEmptyResponse) {
    // Simulates a user who cannot come up with a rule: the interaction is
    // consumed (like a real no-op answer) and no LF is produced.
    return std::nullopt;
  }
  const Example& x = train_->example(query_index);

  // A user inspecting x writes a rule that reflects x's label ("these LFs
  // should be at least accurate on the corresponding query instances",
  // §3.1), so candidates vote the query's true label. Under injected label
  // noise the user instead "believes" the flipped label; those LFs still
  // clear the accuracy threshold globally but misfire on this query
  // (§4.3.3).
  int target_label = x.label;
  if (options_.label_noise > 0.0 && rng_.Bernoulli(options_.label_noise)) {
    const int num_classes = train_->meta().num_classes;
    int flipped = rng_.UniformInt(num_classes - 1);
    if (flipped >= x.label) ++flipped;
    target_label = flipped;
  }

  std::vector<LfCandidate> candidates =
      lf_space_->CandidatesFor(x, options_.accuracy_threshold, target_label);
  // Filter out LFs returned in previous iterations.
  std::vector<LfCandidate> fresh;
  fresh.reserve(candidates.size());
  for (auto& c : candidates) {
    if (returned_keys_.find(c.lf->Key()) == returned_keys_.end()) {
      fresh.push_back(std::move(c));
    }
  }
  if (fresh.empty()) return std::nullopt;

  // Select proportional to coverage (§4.1.4).
  std::vector<double> weights;
  weights.reserve(fresh.size());
  for (const auto& c : fresh) weights.push_back(c.coverage);
  const int pick = rng_.Discrete(weights);
  returned_keys_.insert(fresh[pick].lf->Key());
  return fresh[pick];
}

bool SimulatedUser::VerifyLf(const LfCandidate& candidate) const {
  return candidate.train_accuracy > options_.accuracy_threshold;
}

int SimulatedUser::LabelInstance(int index) const {
  CHECK_GE(index, 0);
  CHECK_LT(index, train_->size());
  return train_->example(index).label;
}

}  // namespace activedp
