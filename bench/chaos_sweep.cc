// Chaos sweep: drives every armed fault site × fault kind × seed through
// the full ActiveDP pipeline and asserts the robustness contract:
//
//   1. nothing crashes or hangs (each scenario runs under its own deadline
//      with a watchdog cancelling the run's token),
//   2. every injected fault that fired is accounted for by a RetryEvent, a
//      DegradationEvent, a non-OK terminal Status, or a detected-corrupt
//      artifact — never silently swallowed,
//   3. every metric the scenario produces is finite,
//   4. checkpoints written under fault injection are resumable: a clean
//      re-run over the same checkpoint path completes (a corrupt checkpoint
//      is ignored with a fresh start, never fatal),
//   5. wall-clock stays bounded (retry backoff is record-only by default).
//
// A final check verifies the retry layer's point: a transient single-fire
// kError on metal.fit is absorbed by a retry and the run's metrics are
// bitwise-identical to the fault-free run.
//
// Registered as a ctest with LABELS chaos (excluded from tier1); also a
// standalone binary:
//   ./build/bench/chaos_sweep --seeds=3 --steps=24 --budget-seconds=120

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/run_checkpoint.h"
#include "core/session_io.h"
#include "data/dataset_zoo.h"
#include "serve/chaos_scenario.h"
#include "util/fault.h"
#include "util/flags.h"
#include "util/metrics.h"
#include "util/retry.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "util/trace.h"

namespace activedp {
namespace {

struct SiteInfo {
  const char* site;
  uint32_t honored;  // kinds this site can express (mirrors the call sites)
};

const SiteInfo kSites[] = {
    {"glasso.solve", FaultKindBit(FaultKind::kError) |
                         FaultKindBit(FaultKind::kNan) |
                         FaultKindBit(FaultKind::kNoConverge)},
    {"metal.fit",
     FaultKindBit(FaultKind::kNan) | FaultKindBit(FaultKind::kError)},
    {"lr.fit", FaultKindBit(FaultKind::kNan) |
                   FaultKindBit(FaultKind::kNoConverge) |
                   FaultKindBit(FaultKind::kError)},
    {"oracle.create_lf", FaultKindBit(FaultKind::kEmptyResponse)},
    {"session.save", FaultKindBit(FaultKind::kError) |
                         FaultKindBit(FaultKind::kTruncateWrite)},
    {"checkpoint.save", FaultKindBit(FaultKind::kError) |
                            FaultKindBit(FaultKind::kTruncateWrite)},
};

const FaultKind kKinds[] = {FaultKind::kError, FaultKind::kNan,
                            FaultKind::kNoConverge, FaultKind::kTruncateWrite,
                            FaultKind::kEmptyResponse};

struct SeedContext {
  std::unique_ptr<DataSplit> split;
  FrameworkContext context;
};

bool AllFiniteCurves(const RunResult& run) {
  for (double v : run.test_accuracy)
    if (!std::isfinite(v)) return false;
  for (double v : run.label_accuracy)
    if (!std::isfinite(v)) return false;
  for (double v : run.label_coverage)
    if (!std::isfinite(v)) return false;
  return std::isfinite(run.average_test_accuracy);
}

ActiveDpOptions MakeOptions(uint64_t seed, const RunLimits& limits) {
  ActiveDpOptions options;
  options.seed = seed ^ 0x9e37;
  options.user.seed = seed ^ 0x1234;
  // Exercise the full graphical-lasso path (the pipeline default is the
  // neighbourhood fast path, which never hits "glasso.solve").
  options.label_pick.blanket.method = BlanketMethod::kGraphicalLasso;
  options.label_pick.min_queries_for_blanket = 6;
  options.policy.retry.seed = seed;
  options.policy.limits = limits;
  return options;
}

struct ScenarioOutcome {
  bool passed = true;
  std::string failure;
  int fires = 0;
  int retries = 0;
  int degradations = 0;
  double elapsed_seconds = 0.0;

  void Fail(const std::string& why) {
    passed = false;
    if (!failure.empty()) failure += "; ";
    failure += why;
  }
};

ScenarioOutcome RunScenario(const SiteInfo& info, FaultKind kind,
                            uint64_t seed, const SeedContext& ctx,
                            const std::string& tmpdir, int steps,
                            double budget_seconds, Watchdog& watchdog) {
  ScenarioOutcome outcome;
  Timer timer;

  auto cancel = std::make_shared<CancellationSource>();
  RunLimits limits;
  limits.deadline = Deadline::After(budget_seconds);
  limits.cancel = cancel->token();
  watchdog.Watch(limits.deadline, cancel);

  const std::string tag = std::string(info.site) + "-" +
                          std::string(FaultKindToString(kind)) + "-" +
                          std::to_string(seed);
  const std::string checkpoint_path = tmpdir + "/chaos-" + tag + ".ckpt";
  const std::string session_path = tmpdir + "/chaos-" + tag + ".session";
  std::filesystem::remove(checkpoint_path);
  std::filesystem::remove(session_path);

  const ActiveDpOptions options = MakeOptions(seed, limits);
  ProtocolOptions protocol;
  protocol.iterations = steps;
  protocol.eval_every = 8;
  protocol.policy.checkpoint_path = checkpoint_path;
  protocol.policy.limits = limits;
  protocol.policy.retry = options.policy.retry;
  RetryLog protocol_retries;
  RecoveryLog protocol_recovery;
  protocol.policy.retry_log = &protocol_retries;
  protocol.policy.recovery = &protocol_recovery;

  RunResult faulted;
  bool session_corruption_detected = false;
  int fires = 0;
  {
    FaultSpec spec;
    spec.kind = kind;
    spec.trigger_after = 0;  // fault from the first hit, every hit
    spec.max_fires = -1;
    spec.seed = seed;
    FaultScope scope(info.site, spec);

    ActiveDp pipeline(ctx.context, options);
    faulted = RunProtocol(pipeline, ctx.context, protocol);

    // Exercise the session path explicitly (the protocol never saves
    // sessions itself): a truncated save must be *detected* on reload.
    const Status session_saved = SaveSession(pipeline.Snapshot(), session_path);
    if (!session_saved.ok()) {
      session_corruption_detected = true;
    } else {
      const Result<SessionState> loaded = LoadSession(session_path);
      if (!loaded.ok() || loaded->lfs.size() != pipeline.lfs().size()) {
        session_corruption_detected = true;
      }
    }

    fires = scope.fire_count();  // read before the scope disarms the site
    outcome.fires = fires;
    outcome.retries = static_cast<int>(pipeline.retry_log().events().size() +
                                       protocol_retries.events().size());
    outcome.degradations =
        static_cast<int>(pipeline.recovery().events().size() +
                         protocol_recovery.events().size());

    const bool honored = (FaultKindBit(kind) & info.honored) != 0;
    if (!honored && fires > 0) {
      outcome.Fail("unhonored kind fired " + std::to_string(fires) +
                   " times");
    }
    if (honored && fires == 0) {
      outcome.Fail("site was never exercised (0 fires)");
    }
    if (!AllFiniteCurves(faulted)) {
      outcome.Fail("non-finite metric in faulted run");
    }
  }

  // Resumability: with the fault disarmed, a fresh pipeline over the same
  // checkpoint path must complete. A checkpoint corrupted by the fault is
  // ignored (fresh start) — detected here as a load failure, never a crash.
  bool checkpoint_corruption_detected = false;
  const Result<RunCheckpoint> reload = LoadRunCheckpoint(checkpoint_path);
  if (!reload.ok()) {
    if (reload.status().code() == StatusCode::kInvalidArgument) {
      checkpoint_corruption_detected = true;
    } else if (reload.status().code() != StatusCode::kNotFound) {
      outcome.Fail("checkpoint reload returned unexpected " +
                   reload.status().ToString());
    }
  }

  // Fault accounting: every fired fault must leave a trace somewhere — a
  // retry, a degradation, a non-OK termination, or a detected-corrupt
  // artifact (truncated writes report success by design; their evidence is
  // the checksum/parse failure on reload).
  int evidence = outcome.retries + outcome.degradations;
  if (!faulted.termination.ok()) ++evidence;
  if (session_corruption_detected) ++evidence;
  if (checkpoint_corruption_detected) ++evidence;
  if (fires > 0 && evidence == 0) {
    outcome.Fail("injected faults left no retry/degradation/status trace");
  }
  {
    RunLimits clean_limits;
    clean_limits.deadline = Deadline::After(budget_seconds);
    const ActiveDpOptions clean_options = MakeOptions(seed, clean_limits);
    ProtocolOptions clean_protocol = protocol;
    clean_protocol.policy.limits = clean_limits;
    clean_protocol.policy.retry_log = nullptr;
    clean_protocol.policy.recovery = nullptr;
    ActiveDp resumed(ctx.context, clean_options);
    const RunResult rerun = RunProtocol(resumed, ctx.context, clean_protocol);
    if (!rerun.termination.ok()) {
      outcome.Fail("clean re-run over the checkpoint did not complete: " +
                   rerun.termination.ToString());
    }
    if (!AllFiniteCurves(rerun)) {
      outcome.Fail("non-finite metric in clean re-run");
    }
  }

  outcome.elapsed_seconds = timer.ElapsedSeconds();
  // Both runs carry a `budget_seconds` deadline; everything else is cheap.
  if (outcome.elapsed_seconds > 2.0 * budget_seconds + 5.0) {
    outcome.Fail("wall-clock exceeded bound (" +
                 std::to_string(outcome.elapsed_seconds) + "s)");
  }
  std::filesystem::remove(checkpoint_path);
  std::filesystem::remove(session_path);
  return outcome;
}

/// The retry layer's acceptance check: one transient kError on metal.fit is
/// absorbed (logged, recovered) and the run's metrics equal the fault-free
/// run's bit for bit.
bool TransientMetalFaultIsAbsorbed(const SeedContext& ctx, uint64_t seed,
                                   int steps) {
  RunLimits limits;  // unlimited: this check is about determinism, not time
  const ActiveDpOptions options = MakeOptions(seed, limits);
  ProtocolOptions protocol;
  protocol.iterations = steps;
  protocol.eval_every = 8;

  ActiveDp clean(ctx.context, options);
  const RunResult baseline = RunProtocol(clean, ctx.context, protocol);
  if (!clean.retry_log().empty() || !clean.recovery().empty()) {
    std::fprintf(stderr,
                 "FAIL transient-absorb: fault-free run was not clean\n%s%s",
                 clean.retry_log().Summary().c_str(),
                 clean.recovery().Summary().c_str());
    return false;
  }

  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.max_fires = 1;
  FaultScope scope("metal.fit", spec);
  ActiveDp faulted(ctx.context, options);
  const RunResult with_fault = RunProtocol(faulted, ctx.context, protocol);

  if (scope.fire_count() != 1) {
    std::fprintf(stderr, "FAIL transient-absorb: expected 1 fire, got %d\n",
                 scope.fire_count());
    return false;
  }
  if (faulted.retry_log().count("label_model.fit") < 1 ||
      faulted.retry_log().recovered_count("label_model.fit") < 1) {
    std::fprintf(stderr,
                 "FAIL transient-absorb: retry log missing the recovered "
                 "label_model.fit retry\n%s",
                 faulted.retry_log().Summary().c_str());
    return false;
  }
  if (!faulted.recovery().empty()) {
    std::fprintf(stderr,
                 "FAIL transient-absorb: retry should have prevented any "
                 "degradation\n%s",
                 faulted.recovery().Summary().c_str());
    return false;
  }
  const bool identical =
      baseline.budgets == with_fault.budgets &&
      baseline.test_accuracy == with_fault.test_accuracy &&
      baseline.label_accuracy == with_fault.label_accuracy &&
      baseline.label_coverage == with_fault.label_coverage &&
      baseline.average_test_accuracy == with_fault.average_test_accuracy;
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL transient-absorb: metrics differ from the fault-free "
                 "run (avg %.17g vs %.17g)\n",
                 baseline.average_test_accuracy,
                 with_fault.average_test_accuracy);
    return false;
  }
  return true;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddFlag("dataset", "youtube", "zoo dataset driven through the sweep");
  flags.AddFlag("scale", "0.25", "fraction of paper dataset sizes");
  flags.AddFlag("seeds", "3", "number of random seeds per (site, kind)");
  flags.AddFlag("steps", "24", "protocol iterations per scenario");
  flags.AddFlag("budget-seconds", "120",
                "per-run deadline (watchdog-enforced)");
  flags.AddFlag("trace-dir", "bench-archive",
                "directory the CHAOS_sweep.trace.* exports land in");
  flags.AddFlag("serve-matrix", "1",
                "also sweep the serving-side fault matrix (serve/"
                "chaos_scenario.h) into the same accounting report");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) return 0;

  const std::string dataset = flags.GetString("dataset");
  const double scale = flags.GetDouble("scale");
  const int num_seeds = flags.GetInt("seeds");
  const int steps = flags.GetInt("steps");
  const double budget_seconds = flags.GetDouble("budget-seconds");

  const std::string tmpdir =
      (std::filesystem::temp_directory_path() / "activedp-chaos").string();
  std::filesystem::create_directories(tmpdir);

  // The sweep runs traced end to end: the exported timeline carries every
  // fault fire, retry and degradation the scenarios provoke, which is the
  // event-folding contract's best stress test.
  MetricsRegistry::Global().ResetAll();
  Tracer::Global().Enable();

  Watchdog watchdog;
  int scenarios = 0;
  int failures = 0;
  Timer total;
  for (int s = 0; s < num_seeds; ++s) {
    const uint64_t seed = 1 + 1000003ULL * s;
    Result<DataSplit> split = MakeZooDataset(dataset, scale, seed);
    if (!split.ok()) {
      std::fprintf(stderr, "dataset %s failed: %s\n", dataset.c_str(),
                   split.status().ToString().c_str());
      return 1;
    }
    SeedContext ctx;
    ctx.split = std::make_unique<DataSplit>(std::move(*split));
    ctx.context = FrameworkContext::Build(*ctx.split);

    for (const SiteInfo& info : kSites) {
      for (const FaultKind kind : kKinds) {
        ++scenarios;
        const ScenarioOutcome outcome = RunScenario(
            info, kind, seed, ctx, tmpdir, steps, budget_seconds, watchdog);
        std::printf("%-6s %-18s %-14s fires=%-4d retries=%-4d degrades=%-4d "
                    "%6.2fs\n",
                    outcome.passed ? "ok" : "FAIL", info.site,
                    std::string(FaultKindToString(kind)).c_str(),
                    outcome.fires, outcome.retries, outcome.degradations,
                    outcome.elapsed_seconds);
        if (!outcome.passed) {
          ++failures;
          std::fprintf(stderr, "  seed %llu: %s\n",
                       static_cast<unsigned long long>(seed),
                       outcome.failure.c_str());
        }
      }
    }

    if (!TransientMetalFaultIsAbsorbed(ctx, seed, steps)) {
      ++failures;
    } else {
      std::printf("ok     transient metal.fit kError absorbed by retry "
                  "(seed %llu)\n",
                  static_cast<unsigned long long>(seed));
    }
  }

  // Serving-side matrix (ServeGuard, serve/chaos_scenario.h): the serve.*
  // fault sites swept into the same accounting report as the offline ones,
  // so one run answers "is every armed site in the system covered". One
  // fixture (training is the expensive part); the scenarios themselves are
  // cheap. bench/serve_chaos is the dedicated multi-seed gate.
  if (flags.GetInt("serve-matrix") != 0) {
    const uint64_t serve_seed = 7;
    const Result<ServeChaosFixture> fixture = BuildServeChaosFixture(
        tmpdir, dataset, std::min(scale, 0.1), serve_seed, /*steps_a=*/12,
        /*steps_b=*/6, /*trace_size=*/48);
    if (!fixture.ok()) {
      ++failures;
      std::fprintf(stderr, "serve fixture build failed: %s\n",
                   fixture.status().ToString().c_str());
    } else {
      for (const ServeChaosSiteInfo& info : ServeChaosSites()) {
        for (const FaultKind kind : ServeChaosKinds()) {
          ++scenarios;
          const ServeChaosOutcome outcome =
              RunServeChaosScenario(*fixture, info.site, kind, serve_seed);
          std::printf("%-6s %-18s %-14s fires=%-4d evidence=%-3d "
                      "digest_mismatches=%-3d %6.2fs\n",
                      outcome.passed ? "ok" : "FAIL", info.site,
                      std::string(FaultKindToString(kind)).c_str(),
                      outcome.fires, outcome.evidence,
                      outcome.digest_mismatches, outcome.elapsed_seconds);
          if (!outcome.passed) {
            ++failures;
            std::fprintf(stderr, "  %s\n", outcome.failure.c_str());
          }
        }
      }
    }
  }

  const RunTrace trace = Tracer::Global().Collect();
  Tracer::Global().Disable();
  std::printf("\n%s", trace.Summary().ToString().c_str());
  const Status trace_written =
      WriteRunTrace(trace, flags.GetString("trace-dir"), "CHAOS_sweep");
  if (!trace_written.ok()) {
    std::fprintf(stderr, "trace export failed: %s\n",
                 trace_written.ToString().c_str());
  }

  std::printf("\n%d scenarios, %d failures, %.1fs total\n", scenarios,
              failures, total.ElapsedSeconds());
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace activedp

int main(int argc, char** argv) { return activedp::Main(argc, argv); }
