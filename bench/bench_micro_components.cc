// Micro-benchmarks (google-benchmark) for the library's computational
// kernels, including the DESIGN.md ablation: full graphical lasso vs
// Meinshausen–Bühlmann neighbourhood selection for LabelPick's Markov
// blanket, label-model fitting, TF-IDF featurization, and LR training.

#include <benchmark/benchmark.h>

#include "core/label_pick.h"
#include "data/synthetic_text.h"
#include "graphical/markov_blanket.h"
#include "labelmodel/dawid_skene.h"
#include "labelmodel/generative_model.h"
#include "labelmodel/majority_vote.h"
#include "labelmodel/metal_completion.h"
#include "labelmodel/metal_model.h"
#include "lf/lf_applier.h"
#include "math/stats.h"
#include "ml/featurizer.h"
#include "ml/linear_model.h"
#include "util/rng.h"

namespace activedp {
namespace {

/// Planted binary weak-label matrix with m LFs over n rows.
LabelMatrix MakeMatrix(int n, int m, Rng& rng, std::vector<int>* labels) {
  labels->resize(n);
  for (int i = 0; i < n; ++i) (*labels)[i] = rng.Bernoulli(0.5);
  LabelMatrix matrix(n);
  for (int j = 0; j < m; ++j) {
    const double accuracy = rng.Uniform(0.6, 0.9);
    const double coverage = rng.Uniform(0.05, 0.3);
    std::vector<int8_t> column(n, kAbstain);
    for (int i = 0; i < n; ++i) {
      if (!rng.Bernoulli(coverage)) continue;
      const bool correct = rng.Bernoulli(accuracy);
      column[i] =
          static_cast<int8_t>(correct ? (*labels)[i] : 1 - (*labels)[i]);
    }
    matrix.AddColumn(std::move(column));
  }
  return matrix;
}

void BM_MetalModelFit(benchmark::State& state) {
  Rng rng(3);
  std::vector<int> labels;
  const LabelMatrix matrix = MakeMatrix(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)),
      rng, &labels);
  for (auto _ : state) {
    MetalModel model;
    benchmark::DoNotOptimize(model.Fit(matrix, 2));
  }
}
BENCHMARK(BM_MetalModelFit)->Args({2000, 50})->Args({2000, 200})
    ->Args({10000, 100});

void BM_DawidSkeneFit(benchmark::State& state) {
  Rng rng(5);
  std::vector<int> labels;
  const LabelMatrix matrix = MakeMatrix(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)),
      rng, &labels);
  for (auto _ : state) {
    DawidSkeneModel model;
    benchmark::DoNotOptimize(model.Fit(matrix, 2));
  }
}
BENCHMARK(BM_DawidSkeneFit)->Args({2000, 50})->Args({2000, 200});

void BM_MetalCompletionFit(benchmark::State& state) {
  Rng rng(6);
  std::vector<int> labels;
  const LabelMatrix matrix = MakeMatrix(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)),
      rng, &labels);
  for (auto _ : state) {
    MetalCompletionModel model;
    benchmark::DoNotOptimize(model.Fit(matrix, 2));
  }
}
BENCHMARK(BM_MetalCompletionFit)->Args({2000, 50})->Args({2000, 200});

void BM_GenerativeModelFit(benchmark::State& state) {
  Rng rng(8);
  std::vector<int> labels;
  const LabelMatrix matrix = MakeMatrix(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)),
      rng, &labels);
  for (auto _ : state) {
    GenerativeModel model;
    benchmark::DoNotOptimize(model.Fit(matrix, 2));
  }
}
BENCHMARK(BM_GenerativeModelFit)->Args({2000, 50})->Args({2000, 200});

void BM_MajorityVoteFit(benchmark::State& state) {
  Rng rng(7);
  std::vector<int> labels;
  const LabelMatrix matrix = MakeMatrix(2000, 100, rng, &labels);
  for (auto _ : state) {
    MajorityVoteModel model;
    benchmark::DoNotOptimize(model.Fit(matrix, 2));
  }
}
BENCHMARK(BM_MajorityVoteFit);

/// The LabelPick ablation: blanket via graphical lasso vs neighbourhood
/// selection on a (t x p) query table.
void BM_MarkovBlanket(benchmark::State& state) {
  const int t = 300;
  const int p = static_cast<int>(state.range(0));
  const bool neighborhood = state.range(1) == 1;
  Rng rng(9);
  Matrix data(t, p);
  for (int i = 0; i < t; ++i) {
    const double y = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    for (int j = 0; j < p - 1; ++j) {
      data(i, j) = rng.Bernoulli(0.2)
                       ? (rng.Bernoulli(0.75) ? y : -y)
                       : 0.0;
    }
    data(i, p - 1) = y;
  }
  MarkovBlanketOptions options;
  options.method = neighborhood ? BlanketMethod::kNeighborhoodSelection
                                : BlanketMethod::kGraphicalLasso;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MarkovBlanket(data, p - 1, options));
  }
}
BENCHMARK(BM_MarkovBlanket)
    ->Args({20, 0})
    ->Args({20, 1})
    ->Args({60, 0})
    ->Args({60, 1})
    ->Args({120, 0})
    ->Args({120, 1})
    ->ArgNames({"p", "mb"})
    ->Unit(benchmark::kMillisecond);

void BM_TfidfFeaturize(benchmark::State& state) {
  SyntheticTextConfig config;
  config.num_examples = 2000;
  Rng rng(11);
  const Dataset dataset = GenerateSyntheticText(config, rng);
  const TextFeaturizer featurizer(dataset);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FeaturizeAll(featurizer, dataset));
  }
}
BENCHMARK(BM_TfidfFeaturize)->Unit(benchmark::kMillisecond);

void BM_LogisticRegressionFit(benchmark::State& state) {
  SyntheticTextConfig config;
  config.num_examples = static_cast<int>(state.range(0));
  Rng rng(13);
  const Dataset dataset = GenerateSyntheticText(config, rng);
  const TextFeaturizer featurizer(dataset);
  const std::vector<SparseVector> features = FeaturizeAll(featurizer, dataset);
  const std::vector<int> labels = dataset.Labels();
  LogisticRegressionOptions options;
  options.epochs = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LogisticRegression::FitHard(
        features, labels, 2, featurizer.dim(), options));
  }
}
BENCHMARK(BM_LogisticRegressionFit)->Arg(500)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_ApplyLfs(benchmark::State& state) {
  SyntheticTextConfig config;
  config.num_examples = 5000;
  Rng rng(15);
  const Dataset dataset = GenerateSyntheticText(config, rng);
  std::vector<LfPtr> lfs;
  for (int k = 0; k < 100; ++k) {
    const int token = rng.UniformInt(dataset.vocabulary().size());
    lfs.push_back(std::make_shared<KeywordLf>(
        token, dataset.vocabulary().GetWord(token), rng.UniformInt(2)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApplyLfs(lfs, dataset));
  }
}
BENCHMARK(BM_ApplyLfs)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace activedp

BENCHMARK_MAIN();
