// Continuous-learning benchmark: the LearnGuard loop end to end, with no
// faults — live client traffic against the PredictionService while drifting
// user feedback (LF votes first, exact labels a wave later) streams through
// the durable event log and the guarded retrainer publishes candidates
// through the staged-rollout gate. Asserts the steady-state contract:
//
//   1. at least --min-publishes retrains are published, each strictly
//      improving holdout accuracy over the snapshot it replaced (the
//      validation gate enforces it; this harness re-checks the reports);
//   2. zero failed client requests across every hot swap — continuous
//      learning causes no served downtime;
//   3. zero served-digest divergence: after the waves, served responses are
//      bitwise identical to the offline predictions of the registry's
//      active snapshot reloaded from its registered path;
//   4. the background Start()/Stop() loop runs cycles on its own thread
//      under the same traffic without incident.
//
// Accounting lands in BENCH_online.json. Registered as a ctest with LABELS
// online; also a standalone binary:
//   ./build/bench/continuous_bench --waves=8 --steps=4 --clients=2

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "online/event_log.h"
#include "online/learn_scenario.h"
#include "online/retrainer.h"
#include "serve/prediction_service.h"
#include "serve/serve_client.h"
#include "serve/snapshot_io.h"
#include "serve/snapshot_registry.h"
#include "util/atomic_file.h"
#include "util/flags.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace activedp {
namespace {

struct WaveRow {
  int wave = 0;
  std::string outcome;
  int events_seen = 0;
  int training_rows = 0;
  double candidate_accuracy = 0.0;
  double active_accuracy = 0.0;
};

void WriteReport(const std::string& path, const std::vector<WaveRow>& rows,
                 int published, double base_accuracy, double final_accuracy,
                 int64_t client_requests, int64_t client_failures,
                 int digest_mismatches, int background_cycles, int failures,
                 double total_seconds) {
  std::string out;
  out += "{\n";
  out += "  \"benchmark\": \"continuous_bench\",\n";
  out += "  \"failures\": " + std::to_string(failures) + ",\n";
  out += "  \"published\": " + std::to_string(published) + ",\n";
  out += "  \"base_accuracy\": " + std::to_string(base_accuracy) + ",\n";
  out += "  \"final_accuracy\": " + std::to_string(final_accuracy) + ",\n";
  out += "  \"client_requests\": " + std::to_string(client_requests) + ",\n";
  out += "  \"client_failures\": " + std::to_string(client_failures) + ",\n";
  out +=
      "  \"digest_mismatches\": " + std::to_string(digest_mismatches) + ",\n";
  out += "  \"background_cycles\": " + std::to_string(background_cycles) +
         ",\n";
  out += "  \"feedback_events\": " +
         std::to_string(
             MetricsRegistry::Global().counter_value("serve.feedback")) +
         ",\n";
  out += "  \"retrain_cycles\": " +
         std::to_string(
             MetricsRegistry::Global().counter_value("retrain.cycles")) +
         ",\n";
  out += "  \"total_seconds\": " + std::to_string(total_seconds) + ",\n";
  out += "  \"waves\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const WaveRow& row = rows[i];
    out += "    {\"wave\": " + std::to_string(row.wave) + ", \"outcome\": \"" +
           row.outcome +
           "\", \"events_seen\": " + std::to_string(row.events_seen) +
           ", \"training_rows\": " + std::to_string(row.training_rows) +
           ", \"candidate_accuracy\": " +
           std::to_string(row.candidate_accuracy) +
           ", \"active_accuracy\": " + std::to_string(row.active_accuracy) +
           "}";
    out += i + 1 < rows.size() ? ",\n" : "\n";
  }
  out += "  ]\n";
  out += "}\n";
  const Status written = AtomicWriteFile(path, out);
  if (!written.ok()) {
    std::fprintf(stderr, "report write failed: %s\n",
                 written.ToString().c_str());
  }
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddFlag("dataset", "youtube", "zoo dataset behind the corpus");
  flags.AddFlag("scale", "0.1", "fraction of paper dataset sizes");
  flags.AddFlag("seed", "7", "fixture + retrain seed");
  flags.AddFlag("steps", "4", "protocol steps behind the deliberately weak "
                              "base snapshot");
  flags.AddFlag("trace", "64", "live-traffic window length");
  flags.AddFlag("waves", "8", "maximum feedback waves (one retrain cycle "
                              "each)");
  flags.AddFlag("min-publishes", "3", "published retrains required to pass");
  flags.AddFlag("clients", "2", "live-traffic client threads");
  flags.AddFlag("out", "BENCH_online.json", "JSON report path");
  flags.AddFlag("trace-dir", "bench-archive",
                "directory the BENCH_online.trace.* exports land in");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 2;
  }
  if (flags.help_requested()) return 0;

  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const std::string tmpdir =
      (std::filesystem::temp_directory_path() / "activedp-continuous-bench")
          .string();
  std::error_code ec;
  std::filesystem::remove_all(tmpdir, ec);
  std::filesystem::create_directories(tmpdir);

  MetricsRegistry::Global().ResetAll();
  Tracer::Global().Enable();
  Timer total;
  int failures = 0;

  const Result<LearnChaosFixture> fixture = BuildLearnChaosFixture(
      tmpdir, flags.GetString("dataset"), flags.GetDouble("scale"), seed,
      flags.GetInt("steps"), flags.GetInt("trace"));
  if (!fixture.ok()) {
    std::fprintf(stderr, "fixture build failed: %s\n",
                 fixture.status().ToString().c_str());
    return 1;
  }

  // --- Durable log + registry + service serving the weak base.
  const Result<std::unique_ptr<EventLog>> log =
      EventLog::Open(tmpdir + "/log", EventLogOptions{});
  Result<SnapshotRegistry> opened =
      SnapshotRegistry::Open(tmpdir + "/registry.manifest");
  if (!log.ok() || !opened.ok()) {
    std::fprintf(stderr, "log/registry setup failed\n");
    return 1;
  }
  SnapshotRegistry registry = std::move(*opened);
  const Result<int64_t> base_id =
      registry.Register(fixture->snapshot_path, -1, "continuous-base");
  if (!base_id.ok() || !registry.Activate(*base_id).ok()) {
    std::fprintf(stderr, "registry setup failed\n");
    return 1;
  }

  PredictionServiceOptions service_options;
  service_options.max_batch_size = 16;
  service_options.max_batch_delay_ms = 0.2;
  PredictionService service(service_options);
  service.LoadSnapshot(fixture->snapshot);
  service.AttachEventLog(log->get());

  const Result<double> base_accuracy = Retrainer::HoldoutAccuracy(
      *fixture->snapshot, fixture->holdout, fixture->holdout_labels);
  if (!base_accuracy.ok()) {
    std::fprintf(stderr, "base holdout scoring failed\n");
    return 1;
  }

  RetrainerOptions retrain_options;
  retrain_options.min_training_rows = 8;
  retrain_options.lr.epochs = 40;
  retrain_options.lr.seed = seed ^ 99;
  retrain_options.min_accuracy_gain = 0.0;  // strictly-better gate
  retrain_options.retry.seed = seed;
  retrain_options.rollout.canary_fraction = 0.3;
  retrain_options.rollout.window =
      std::min<int>(64, static_cast<int>(fixture->trace.size()));
  retrain_options.rollout.min_canary_samples = 4;
  retrain_options.rollout.seed = 0x1ea4;
  retrain_options.snapshot_dir = tmpdir + "/candidates";
  retrain_options.poll_interval_seconds = 0.02;

  Retrainer::Config config;
  config.log = log->get();
  config.registry = &registry;
  config.service = &service;
  config.features = &fixture->features;
  config.holdout = &fixture->holdout;
  config.holdout_labels = &fixture->holdout_labels;
  config.rollout_trace = &fixture->trace;
  Retrainer retrainer(config, retrain_options);

  // --- Live traffic for the whole run: client threads hammer the service
  // through PredictWithRetry. Every request must succeed — hot swaps cause
  // zero downtime, and sheds are absorbed by the retry-after hint.
  std::atomic<bool> stop{false};
  std::atomic<int64_t> client_requests{0};
  std::atomic<int64_t> client_failures{0};
  RetryPolicy client_policy;
  client_policy.max_attempts = 6;
  client_policy.sleep = true;
  const int num_clients = std::max(1, flags.GetInt("clients"));
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      size_t i = static_cast<size_t>(c);
      while (!stop.load(std::memory_order_relaxed)) {
        const Example& example =
            fixture->trace[i++ % fixture->trace.size()];
        const Result<ServedPrediction> served = PredictWithRetry(
            service, example, Deadline::Infinite(), client_policy);
        client_requests.fetch_add(1, std::memory_order_relaxed);
        if (!served.ok()) {
          client_failures.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  // --- Drifting feedback: wave w delivers exact ground-truth labels for
  // chunk w and weak LF votes for chunk w+1 (the region users will confirm
  // next wave — exact labels override the votes when they arrive).
  const int corpus = static_cast<int>(fixture->features.size());
  const int max_waves = std::max(1, flags.GetInt("waves"));
  const int chunk = std::max(16, corpus / (max_waves + 1));
  std::vector<WaveRow> rows;
  int published = 0;
  for (int w = 0; w < max_waves; ++w) {
    const int exact_begin = w * chunk;
    const int exact_end = std::min(corpus, exact_begin + chunk);
    const int vote_end = std::min(corpus, exact_end + chunk);
    if (exact_begin >= corpus) break;
    for (int i = exact_begin; i < exact_end; ++i) {
      FeedbackEvent event;
      event.type = FeedbackType::kExactLabel;
      event.row = i;
      event.label = fixture->corpus_labels[i];
      if (!service.RecordFeedback(event).ok()) ++failures;
    }
    for (int i = exact_end; i < vote_end; ++i) {
      FeedbackEvent event;
      event.type = FeedbackType::kLfVote;
      event.row = i;
      event.label = fixture->corpus_labels[i];
      event.lf_id = i % 5;
      if (!service.RecordFeedback(event).ok()) ++failures;
    }

    const Result<RetrainReport> cycle = retrainer.RunOnce();
    if (!cycle.ok()) {
      std::fprintf(stderr, "wave %d cycle failed: %s\n", w,
                   cycle.status().ToString().c_str());
      ++failures;
      break;
    }
    WaveRow row;
    row.wave = w;
    row.outcome = std::string(RetrainOutcomeToString(cycle->outcome));
    row.events_seen = cycle->events_seen;
    row.training_rows = cycle->training_rows;
    row.candidate_accuracy = cycle->candidate_accuracy;
    row.active_accuracy = cycle->active_accuracy;
    rows.push_back(row);
    std::printf("wave %d: %-11s events=%-5d rows=%-5d active=%.4f "
                "candidate=%.4f\n",
                w, row.outcome.c_str(), row.events_seen, row.training_rows,
                row.active_accuracy, row.candidate_accuracy);
    if (cycle->outcome == RetrainOutcome::kPublished) {
      ++published;
      // The strictly-better contract, re-checked from the report rather
      // than trusted from the gate.
      if (cycle->candidate_accuracy <= cycle->active_accuracy) {
        std::fprintf(stderr,
                     "FAIL: published wave %d did not improve accuracy\n", w);
        ++failures;
      }
    } else if (cycle->outcome != RetrainOutcome::kRejected &&
               cycle->outcome != RetrainOutcome::kNoData) {
      std::fprintf(stderr, "FAIL: fault-free wave %d ended %s (%s)\n", w,
                   row.outcome.c_str(), cycle->detail.c_str());
      ++failures;
    }
  }

  if (published < flags.GetInt("min-publishes")) {
    std::fprintf(stderr, "FAIL: only %d retrains published (need %d)\n",
                 published, flags.GetInt("min-publishes"));
    ++failures;
  }

  // --- Background loop under the same traffic: Start() must run cycles on
  // its own thread (they are kNoData — the waves are consumed) without
  // disturbing anything.
  const int cycles_before = retrainer.stats().cycles;
  retrainer.Start();
  Timer bg;
  while (retrainer.stats().cycles < cycles_before + 3 &&
         bg.ElapsedSeconds() < 10.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  retrainer.Stop();
  const int background_cycles = retrainer.stats().cycles - cycles_before;
  if (background_cycles <= 0) {
    std::fprintf(stderr, "FAIL: background loop never ran a cycle\n");
    ++failures;
  }

  stop.store(true);
  for (std::thread& t : clients) t.join();
  if (client_failures.load() != 0) {
    std::fprintf(stderr,
                 "FAIL: %lld of %lld client requests failed during "
                 "continuous learning\n",
                 static_cast<long long>(client_failures.load()),
                 static_cast<long long>(client_requests.load()));
    ++failures;
  }

  // --- Zero divergence: served responses must match the offline
  // predictions of the registry's active snapshot, reloaded from disk.
  int digest_mismatches = 0;
  double final_accuracy = *base_accuracy;
  const std::optional<int64_t> active = registry.active_id();
  if (!active.has_value()) {
    std::fprintf(stderr, "FAIL: no active snapshot after the waves\n");
    ++failures;
  } else {
    const Result<SnapshotRecord> record = registry.Get(*active);
    const Result<ModelSnapshot> offline =
        record.ok() ? LoadSnapshot(record->path)
                    : Result<ModelSnapshot>(record.status());
    if (!offline.ok()) {
      std::fprintf(stderr, "FAIL: active snapshot unloadable: %s\n",
                   offline.status().ToString().c_str());
      ++failures;
    } else {
      for (const Example& example : fixture->trace) {
        const Result<ServedPrediction> served = service.Predict(example);
        const Result<ServedPrediction> expected = offline->Predict(example);
        if (!served.ok() || !expected.ok() ||
            PredictionDigest(*served) != PredictionDigest(*expected)) {
          ++digest_mismatches;
        }
      }
      if (digest_mismatches > 0) {
        std::fprintf(stderr, "FAIL: %d served digests diverged\n",
                     digest_mismatches);
        ++failures;
      }
      const Result<double> final_score = Retrainer::HoldoutAccuracy(
          *offline, fixture->holdout, fixture->holdout_labels);
      if (final_score.ok()) final_accuracy = *final_score;
      if (published > 0 && final_accuracy <= *base_accuracy) {
        std::fprintf(stderr,
                     "FAIL: final accuracy %.4f did not beat base %.4f\n",
                     final_accuracy, *base_accuracy);
        ++failures;
      }
    }
  }

  const RunTrace trace = Tracer::Global().Collect();
  Tracer::Global().Disable();
  const Status trace_written =
      WriteRunTrace(trace, flags.GetString("trace-dir"), "BENCH_online");
  if (!trace_written.ok()) {
    std::fprintf(stderr, "trace export failed: %s\n",
                 trace_written.ToString().c_str());
  }
  WriteReport(flags.GetString("out"), rows, published, *base_accuracy,
              final_accuracy, client_requests.load(), client_failures.load(),
              digest_mismatches, background_cycles, failures,
              total.ElapsedSeconds());

  std::printf("\n%d waves, %d published, accuracy %.4f -> %.4f, "
              "%lld requests (%lld failed), %d failures, %.1fs\n",
              static_cast<int>(rows.size()), published, *base_accuracy,
              final_accuracy, static_cast<long long>(client_requests.load()),
              static_cast<long long>(client_failures.load()), failures,
              total.ElapsedSeconds());
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace activedp

int main(int argc, char** argv) { return activedp::Main(argc, argv); }
