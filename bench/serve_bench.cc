// Serving benchmark for the ServeDP stack: trains a small pipeline, exports
// a ModelSnapshot, and drives a PredictionService under closed-loop load
// (a fixed set of clients issuing back-to-back requests) and open-loop load
// (requests arriving at a target rate regardless of completions). Writes
// throughput, p50/p95/p99 latency and the observed micro-batch-size
// histogram to a JSON report (BENCH_serving.json).
//
// Determinism is asserted unconditionally, mirroring perf_bench: every
// served prediction is digested (FNV-1a over raw double bit patterns) and
// compared against the offline ConFusion aggregation, sweeping batch sizes
// and compute-pool thread counts, plus a hot-swap-under-load pass where
// each response must bitwise match one of the two published snapshots.
// Any mismatch fails the run with exit code 1.
//
//   ./build/bench/serve_bench --requests=2000 --clients=8 --rate=4000
//       --out=BENCH_serving.json
//
// --tenants=N switches to the TenantMesh storm (DESIGN.md §15): an open-loop
// multi-tenant storm against a ShardRouter with Zipf tenant popularity,
// mixed burst sizes, one deterministically-overloaded tenant, and a
// mid-storm per-tenant promote + forced rollback; per-tenant latency
// percentiles and the digest/isolation gate verdicts land in
// BENCH_serving_mt.json (see RunMultiTenantStorm below):
//
//   ./build/bench/serve_bench --tenants=6 --shards=3 --requests=600
//       --rate=2500 --out=BENCH_serving_mt.json
//
// Both modes are registered as ctests with LABELS serve at small smoke
// sizes (serve_bench and serve_mt_storm).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/activedp.h"
#include "core/framework.h"
#include "data/dataset_zoo.h"
#include "obs/flight_recorder.h"
#include "obs/slo.h"
#include "serve/chaos_scenario.h"
#include "serve/model_snapshot.h"
#include "serve/prediction_service.h"
#include "serve/rollout.h"
#include "serve/serve_config.h"
#include "serve/serve_types.h"
#include "serve/shard_router.h"
#include "serve/snapshot_export.h"
#include "serve/snapshot_registry.h"
#include "util/atomic_file.h"
#include "util/fault.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

namespace activedp {
namespace {

class BitHasher {
 public:
  void Add(double value) {
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    AddBits(bits);
  }
  void Add(int value) { AddBits(static_cast<uint64_t>(value)); }
  void Add(const ServedPrediction& prediction) {
    Add(prediction.label);
    Add(static_cast<int>(prediction.source));
    for (double p : prediction.proba) Add(p);
  }
  uint64_t digest() const { return hash_; }

 private:
  void AddBits(uint64_t bits) {
    for (int byte = 0; byte < 8; ++byte) {
      hash_ ^= (bits >> (8 * byte)) & 0xffu;
      hash_ *= 0x100000001b3ULL;
    }
  }
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

std::string HexDigest(uint64_t digest) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(digest));
  return buffer;
}

/// Latency percentiles over one load phase (all values in milliseconds).
/// p50/p95/p99 come from Histogram::Quantile over the labelled
/// serve.client_latency_ms{phase=...} series — the same buckets the JSON
/// and Prometheus exports publish, so the summary and the exported
/// histogram can never disagree (see HistogramQuantile in util/metrics.h
/// for the interpolation rule and its bucket-width error bounds). mean and
/// max are exact over the raw samples.
struct LatencyStats {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

/// Bucket bounds for the per-request client latency histograms. Finer than
/// the service's batch-latency buckets because quantiles interpolate within
/// a bucket: the quantile error is at most the containing bucket's width.
const std::vector<double>& ClientLatencyBounds() {
  static const std::vector<double> bounds = {
      0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2, 3, 5, 8, 12, 20, 50, 100, 250};
  return bounds;
}

Histogram& PhaseLatencyHistogram(const std::string& phase) {
  return MetricsRegistry::Global().histogram(
      "serve.client_latency_ms", {{"phase", phase}}, ClientLatencyBounds());
}

LatencyStats Summarize(const Histogram& histogram,
                       const std::vector<double>& latencies_ms) {
  LatencyStats stats;
  if (latencies_ms.empty()) return stats;
  stats.p50 = histogram.Quantile(0.50);
  stats.p95 = histogram.Quantile(0.95);
  stats.p99 = histogram.Quantile(0.99);
  double sum = 0.0;
  for (double v : latencies_ms) {
    sum += v;
    stats.max = std::max(stats.max, v);
  }
  stats.mean = sum / latencies_ms.size();
  return stats;
}

struct LoadResult {
  int requests = 0;
  int failures = 0;
  double seconds = 0.0;
  double throughput_rps = 0.0;
  LatencyStats latency;
};

/// Closed loop: `clients` threads, each issuing its share of `requests`
/// back-to-back (a new request only after the previous response). Measures
/// the service's sustainable throughput.
LoadResult RunClosedLoop(PredictionService& service, const Dataset& train,
                         int requests, int clients, SloEngine* slo) {
  LoadResult result;
  result.requests = requests;
  Histogram& histogram = PhaseLatencyHistogram("closed");
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<int> failures{0};
  Timer wall;
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      const int share = requests / clients + (c < requests % clients ? 1 : 0);
      latencies[c].reserve(share);
      for (int k = 0; k < share; ++k) {
        const int row = (c + k * clients) % train.size();
        Timer timer;
        const Result<ServedPrediction> served =
            service.Predict(train.example(row));
        const double elapsed_ms = timer.ElapsedMillis();
        histogram.Observe(elapsed_ms);
        latencies[c].push_back(elapsed_ms);
        if (!served.ok()) failures.fetch_add(1);
        if (slo != nullptr) slo->MaybeTick(0.25);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  result.seconds = wall.ElapsedSeconds();
  result.failures = failures.load();
  std::vector<double> all;
  all.reserve(requests);
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  result.throughput_rps =
      result.seconds > 0.0 ? requests / result.seconds : 0.0;
  result.latency = Summarize(histogram, all);
  return result;
}

/// Open loop: one issuing thread schedules arrivals at `rate` per second
/// (independent of completions — queueing delay shows up in the latency
/// tail) while a collector drains the futures in FIFO order, which is also
/// their completion order under the single dispatcher.
LoadResult RunOpenLoop(PredictionService& service, const Dataset& train,
                       int requests, double rate, SloEngine* slo) {
  using Clock = std::chrono::steady_clock;
  LoadResult result;
  result.requests = requests;
  std::vector<std::future<Result<ServedPrediction>>> futures(requests);
  std::vector<Clock::time_point> sent(requests);
  std::vector<double> latencies(requests, 0.0);
  std::atomic<int> issued{0};
  std::atomic<int> failures{0};

  Timer wall;
  const Clock::time_point start = Clock::now();
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / rate));

  Histogram& histogram = PhaseLatencyHistogram("open");
  std::thread collector([&] {
    for (int i = 0; i < requests; ++i) {
      while (issued.load(std::memory_order_acquire) <= i) {
        std::this_thread::yield();
      }
      const Result<ServedPrediction> served = futures[i].get();
      latencies[i] = std::chrono::duration<double, std::milli>(Clock::now() -
                                                              sent[i])
                         .count();
      histogram.Observe(latencies[i]);
      if (!served.ok()) failures.fetch_add(1);
    }
  });
  for (int i = 0; i < requests; ++i) {
    std::this_thread::sleep_until(start + i * interval);
    sent[i] = Clock::now();
    futures[i] = service.PredictAsync(train.example(i % train.size()));
    issued.store(i + 1, std::memory_order_release);
    if (slo != nullptr) slo->MaybeTick(0.25);
  }
  collector.join();
  result.seconds = wall.ElapsedSeconds();
  result.failures = failures.load();
  result.throughput_rps =
      result.seconds > 0.0 ? requests / result.seconds : 0.0;
  result.latency = Summarize(histogram, latencies);
  return result;
}

/// Served digest over the first `n` training rows at one (batch size,
/// thread count) configuration.
uint64_t ServedDigest(const std::shared_ptr<const ModelSnapshot>& snapshot,
                      const Dataset& train, int n, int batch_size) {
  PredictionServiceOptions options;
  options.max_batch_size = batch_size;
  options.max_batch_delay_ms = 0.5;
  options.max_queue_depth = n + 1;
  PredictionService service(options);
  service.LoadSnapshot(snapshot);
  std::vector<std::future<Result<ServedPrediction>>> futures;
  futures.reserve(n);
  for (int i = 0; i < n; ++i) {
    futures.push_back(service.PredictAsync(train.example(i)));
  }
  BitHasher hasher;
  for (int i = 0; i < n; ++i) {
    const Result<ServedPrediction> served = futures[i].get();
    if (!served.ok()) {
      LOG(Error) << "serve failed at row " << i << ": "
                 << served.status().ToString();
      return 0;
    }
    hasher.Add(*served);
  }
  return hasher.digest();
}

/// Hot-swap gate: clients hammer the service while snapshots A and B are
/// swapped repeatedly; every response must bitwise match A's or B's offline
/// prediction for that row. Returns the number of mismatches.
int RunHotSwapGate(const std::shared_ptr<const ModelSnapshot>& a,
                   const std::shared_ptr<const ModelSnapshot>& b,
                   const Dataset& train, int requests, int clients,
                   int swaps) {
  PredictionServiceOptions options;
  options.max_batch_size = 8;
  options.max_batch_delay_ms = 0.2;
  PredictionService service(options);
  service.LoadSnapshot(a);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(clients);
  const int per_client = requests / clients;
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      for (int k = 0; k < per_client; ++k) {
        const int row = (c * per_client + k) % train.size();
        const Result<ServedPrediction> served =
            service.Predict(train.example(row));
        if (!served.ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        const Result<ServedPrediction> via_a = a->Predict(train.example(row));
        const Result<ServedPrediction> via_b = b->Predict(train.example(row));
        const bool matches_a = via_a.ok() && served->proba == via_a->proba &&
                               served->label == via_a->label;
        const bool matches_b = via_b.ok() && served->proba == via_b->proba &&
                               served->label == via_b->label;
        if (!matches_a && !matches_b) mismatches.fetch_add(1);
      }
    });
  }
  for (int swap = 0; swap < swaps; ++swap) {
    service.LoadSnapshot(swap % 2 == 0 ? b : a);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (std::thread& t : workers) t.join();
  return mismatches.load();
}

void AppendLatency(std::ofstream& out, const LatencyStats& stats) {
  out << "{\"p50_ms\": " << stats.p50 << ", \"p95_ms\": " << stats.p95
      << ", \"p99_ms\": " << stats.p99 << ", \"mean_ms\": " << stats.mean
      << ", \"max_ms\": " << stats.max << "}";
}

void AppendHistogram(std::ofstream& out, const Histogram& histogram) {
  out << "[";
  for (int bucket = 0; bucket < histogram.num_buckets(); ++bucket) {
    if (bucket > 0) out << ", ";
    out << "{\"le\": ";
    if (bucket < static_cast<int>(histogram.bounds().size())) {
      out << histogram.bounds()[bucket];
    } else {
      out << "\"inf\"";
    }
    out << ", \"count\": " << histogram.bucket_count(bucket) << "}";
  }
  out << "]";
}

void AppendLoad(std::ofstream& out, const LoadResult& load) {
  out << "\"requests\": " << load.requests
      << ", \"failures\": " << load.failures
      << ", \"seconds\": " << load.seconds
      << ", \"throughput_rps\": " << load.throughput_rps
      << ", \"latency\": ";
  AppendLatency(out, load.latency);
}

void WriteJson(const std::string& path, const ModelSnapshot& snapshot,
               const Dataset& train, bool deterministic, int configs_checked,
               int hot_swap_requests, int hot_swap_mismatches,
               const LoadResult& closed, int clients, const LoadResult& open,
               double rate, const ServiceHealth& health, int incidents,
               bool slos_met) {
  std::ofstream out(path, std::ios::trunc);
  out << "{\n";
  out << "  \"benchmark\": \"serving\",\n";
  out << "  \"dataset\": \"" << snapshot.state().dataset << "\",\n";
  out << "  \"train_examples\": " << train.size() << ",\n";
  out << "  \"snapshot\": {\"classes\": " << snapshot.num_classes()
      << ", \"dim\": " << snapshot.feature_dim()
      << ", \"lfs\": " << snapshot.state().lfs.size()
      << ", \"threshold\": " << snapshot.threshold()
      << ", \"has_end_model\": " << (snapshot.has_end_model() ? "true" : "false")
      << "},\n";
  out << "  \"determinism\": {\"passed\": "
      << (deterministic ? "true" : "false")
      << ", \"configs_checked\": " << configs_checked
      << ", \"hot_swap_requests\": " << hot_swap_requests
      << ", \"hot_swap_mismatches\": " << hot_swap_mismatches << "},\n";
  out << "  \"closed_loop\": {\"clients\": " << clients << ", ";
  AppendLoad(out, closed);
  out << "},\n";
  out << "  \"open_loop\": {\"target_rps\": " << rate << ", ";
  AppendLoad(out, open);
  out << "},\n";
  // The micro-batch-size and batch-latency distributions the dispatcher
  // actually observed during the two load phases (registry is reset before
  // them). Bounds mirror the service's own registration in
  // prediction_service.cc; the registry keeps the first-registered bounds
  // for an existing name, so these are documentation as much as defaults.
  const Histogram& sizes = MetricsRegistry::Global().histogram(
      "serve.batch_size", {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64, 128});
  out << "  \"batch_size_histogram\": ";
  AppendHistogram(out, sizes);
  out << ",\n";
  const Histogram& latencies = MetricsRegistry::Global().histogram(
      "serve.batch_latency_ms",
      {0.005, 0.01, 0.025, 0.05, 0.1, 0.5, 1, 2, 5, 10, 25, 50, 100});
  out << "  \"batch_latency_ms_histogram\": ";
  AppendHistogram(out, latencies);
  out << ",\n";
  out << "  \"batches\": "
      << MetricsRegistry::Global().counter_value("serve.batches") << ",\n";
  out << "  \"served_requests\": "
      << MetricsRegistry::Global().counter_value("serve.requests") << ",\n";
  // Health probe captured at the end of the load phases, just before
  // Shutdown — what a monitoring scrape of the service would have seen.
  out << "  \"health\": {\"ok\": " << (health.ok ? "true" : "false")
      << ", \"shutdown\": " << (health.shutdown ? "true" : "false")
      << ", \"has_snapshot\": " << (health.has_snapshot ? "true" : "false")
      << ", \"queue_depth\": " << health.queue_depth
      << ", \"estimated_queue_delay_ms\": " << health.estimated_queue_delay_ms
      << ", \"breaker_trips\": " << health.breaker_trips << "},\n";
  // Flight-recorder dumps produced during the load phases (a clean run must
  // report zero) and the SLO verdict from the exported burn-rate status.
  out << "  \"incidents\": " << incidents << ",\n";
  out << "  \"slos_met\": " << (slos_met ? "true" : "false") << "\n";
  out << "}\n";
}

// ---------------------------------------------------------------------------
// Multi-tenant storm (--tenants=N): an open-loop storm against a ShardRouter
// (DESIGN.md §15) with Zipf tenant popularity and mixed burst sizes. Gates,
// all hard failures:
//   * per-tenant served == offline bitwise (PredictionDigest per row);
//   * per-tenant response digests identical across client thread counts —
//     routing and replies are a pure function of the schedule;
//   * isolation: one tenant driven into overload sheds every one of its own
//     storm requests with a structured RejectInfo (and a priority=1 probe
//     still gets through), while every other tenant completes with zero
//     failures and zero sheds;
//   * a mid-storm per-tenant staged rollout: one tenant promotes, another is
//     forced into rollback via the "rollout.canary" fault site — both
//     instants land in the RunTrace tagged with their tenant, the rollback
//     fires exactly one flight-recorder incident, and no other tenant's
//     snapshot moves.
// Per-tenant p50/p95/p99 and the gate verdicts land in BENCH_serving_mt.json.

struct StormSlot {
  int tenant = 0;
  int row = 0;
};

/// Deterministic open-loop schedule: Zipf(1.1) tenant popularity, burst
/// sizes 1..8, rows assigned per tenant by that tenant's own counter, so a
/// tenant's row sequence never depends on the other tenants' draws.
std::vector<StormSlot> BuildStormSchedule(int tenants, int requests,
                                          int trace_rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> weights(tenants);
  for (int t = 0; t < tenants; ++t) {
    weights[t] = 1.0 / std::pow(t + 1.0, 1.1);
  }
  std::vector<int> next_row(tenants, 0);
  std::vector<StormSlot> slots;
  slots.reserve(requests);
  while (static_cast<int>(slots.size()) < requests) {
    const int tenant = rng.Discrete(weights);
    const int burst = rng.UniformInt(1, 8);
    for (int b = 0; b < burst && static_cast<int>(slots.size()) < requests;
         ++b) {
      slots.push_back({tenant, next_row[tenant]++ % trace_rows});
    }
  }
  return slots;
}

struct StormTenant {
  std::string id;
  /// Offline digests of the snapshot this tenant should currently serve.
  const std::vector<uint64_t>* expected = nullptr;
  bool noisy = false;
};

struct TenantOutcome {
  int64_t issued = 0;
  int64_t completed = 0;
  int64_t shed = 0;
  /// Hard errors, i.e. anything that is neither a completion nor a
  /// structured shed. Must stay 0 for every tenant.
  int64_t failures = 0;
  int64_t digest_mismatches = 0;
  /// Sheds whose RejectInfo was missing or malformed (no reason, hint < 1ms).
  int64_t malformed_rejects = 0;
  /// FNV-1a over (row, PredictionDigest) of completed requests, folded in
  /// schedule order — identical across client thread counts by contract.
  uint64_t digest = 0xcbf29ce484222325ULL;
  std::vector<double> latencies_ms;
};

void FoldDigest(uint64_t& hash, uint64_t bits) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (bits >> (8 * byte)) & 0xffu;
    hash *= 0x100000001b3ULL;
  }
}

/// Issues schedule slots [begin, end) open-loop at `rate` across
/// `client_threads` issuing threads (thread c takes slots where
/// i % client_threads == c, paced on the global index, so the aggregate
/// arrival process is thread-count-independent) and folds the replies into
/// per-tenant outcomes in schedule order.
std::vector<TenantOutcome> RunStormSlots(ShardRouter& router,
                                         const std::vector<StormSlot>& slots,
                                         size_t begin, size_t end,
                                         const std::vector<Example>& trace,
                                         const std::vector<StormTenant>& tenants,
                                         int client_threads, double rate) {
  using Clock = std::chrono::steady_clock;
  const size_t n = end - begin;
  std::vector<std::optional<ServeReply>> replies(n);
  std::vector<double> latencies(n, 0.0);
  std::atomic<size_t> completed{0};
  const Clock::time_point start = Clock::now();
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / rate));
  std::vector<std::thread> issuers;
  issuers.reserve(client_threads);
  for (int c = 0; c < client_threads; ++c) {
    issuers.emplace_back([&, c] {
      for (size_t i = c; i < n; i += client_threads) {
        std::this_thread::sleep_until(start + i * interval);
        const StormSlot& slot = slots[begin + i];
        ServeRequest request;
        request.tenant_id = tenants[slot.tenant].id;
        request.example = trace[slot.row];
        Timer timer;
        router.PredictWithCallback(
            std::move(request),
            [&replies, &latencies, &completed, i, timer](ServeReply reply) {
              latencies[i] = timer.ElapsedMillis();
              replies[i] = std::move(reply);
              completed.fetch_add(1, std::memory_order_release);
            });
      }
    });
  }
  for (std::thread& t : issuers) t.join();
  while (completed.load(std::memory_order_acquire) < n) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::vector<TenantOutcome> outcomes(tenants.size());
  for (size_t i = 0; i < n; ++i) {
    const StormSlot& slot = slots[begin + i];
    const StormTenant& tenant = tenants[slot.tenant];
    TenantOutcome& outcome = outcomes[slot.tenant];
    ++outcome.issued;
    CHECK(replies[i].has_value());
    const ServeReply& reply = *replies[i];
    if (reply.ok()) {
      ++outcome.completed;
      outcome.latencies_ms.push_back(latencies[i]);
      const uint64_t digest = PredictionDigest(reply.prediction);
      if (digest != (*tenant.expected)[slot.row]) ++outcome.digest_mismatches;
      FoldDigest(outcome.digest, static_cast<uint64_t>(slot.row));
      FoldDigest(outcome.digest, digest);
    } else if (reply.reject.has_value()) {
      ++outcome.shed;
      const RejectInfo& info = *reply.reject;
      if (info.reason == RejectReason::kNone || info.retry_after_ms < 1.0 ||
          info.queue_depth < 0) {
        ++outcome.malformed_rejects;
      }
    } else {
      ++outcome.failures;
    }
  }
  return outcomes;
}

int RunMultiTenantStorm(FlagParser& flags) {
  const int num_tenants = flags.GetInt("tenants");
  const int num_shards = flags.GetInt("shards");
  const int requests = flags.GetInt("requests");
  const double rate = flags.GetDouble("rate");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const std::string trace_dir = flags.GetString("trace-dir");
  if (num_tenants < 5) {
    std::fprintf(stderr, "--tenants must be >= 5 (noisy + promote + rollback "
                         "+ at least two bystanders)\n");
    return 2;
  }
  std::vector<int> storm_threads;
  for (const std::string& part : Split(flags.GetString("storm-threads"), ',')) {
    if (!part.empty()) storm_threads.push_back(std::stoi(part));
  }
  CHECK(!storm_threads.empty());

  // Fixture: two snapshots (A early, B later) saved to disk for the tenant
  // registries, plus the offline per-row digests both gates compare against.
  SetComputePoolThreads(1);
  const int kTraceRows = 64;
  Result<ServeChaosFixture> built = BuildServeChaosFixture(
      trace_dir + "/serve-mt-fixture", "youtube", flags.GetDouble("scale"),
      seed, /*steps_a=*/12, /*steps_b=*/6, kTraceRows);
  if (!built.ok()) {
    std::fprintf(stderr, "fixture: %s\n", built.status().ToString().c_str());
    return 2;
  }
  const ServeChaosFixture& fixture = *built;

  // Cast: tenant 1 (second-most popular under Zipf) is the noisy one; 2
  // promotes A -> B mid-storm; 3 is forced into a canary rollback; everyone
  // else alternates A/B and must never be perturbed.
  const int kNoisy = 1, kPromote = 2, kRollback = 3;
  std::vector<StormTenant> cast(num_tenants);
  for (int t = 0; t < num_tenants; ++t) {
    cast[t].id = "tenant-" + std::to_string(t);
    cast[t].noisy = (t == kNoisy);
    const bool serves_b =
        (t % 2 == 1) && t != kNoisy && t != kPromote && t != kRollback;
    cast[t].expected = serves_b ? &fixture.digests_b : &fixture.digests_a;
  }
  const std::vector<StormSlot> slots =
      BuildStormSchedule(num_tenants, requests, kTraceRows, seed + 101);
  const size_t half = slots.size() / 2;

  bool passed = true;
  const auto fail = [&passed](const std::string& why) {
    std::fprintf(stderr, "FAIL: %s\n", why.c_str());
    passed = false;
  };

  TenantLimits default_limits;
  default_limits.deadline_budget_ms = 5000.0;
  TenantLimits noisy_limits = default_limits;
  // Below the router's EWMA sample floor: once the warm-up seeds the
  // tenant's EWMA, every priority-0 request from it sheds deterministically
  // (estimate = (in_flight + 1) x EWMA > limit always) — which is what keeps
  // the thread-independence digest gate exact under overload.
  noisy_limits.max_queue_delay_ms = 0.0001;

  const auto build_router = [&]() -> std::unique_ptr<ShardRouter> {
    Result<ServeConfig> config = ServeConfigBuilder()
                                     .set_num_shards(num_shards)
                                     .set_virtual_nodes(64)
                                     .set_max_batch_size(8)
                                     .set_max_batch_delay_ms(0.3)
                                     .set_max_queue_depth(requests + 1)
                                     .set_default_tenant_limits(default_limits)
                                     .Build();
    CHECK(config.ok()) << config.status().ToString();
    auto router = std::make_unique<ShardRouter>(*std::move(config));
    for (int t = 0; t < num_tenants; ++t) {
      const Status added = cast[t].noisy
                               ? router->AddTenant(cast[t].id, noisy_limits)
                               : router->AddTenant(cast[t].id);
      CHECK(added.ok()) << added.ToString();
      const auto snapshot = cast[t].expected == &fixture.digests_b
                                ? fixture.snapshot_b
                                : fixture.snapshot_a;
      CHECK(router->SetTenantSnapshot(cast[t].id, snapshot).ok());
    }
    // Warm the noisy tenant's EWMA (priority=1 bypasses its shedder) so its
    // overload behaviour is deterministic from the first storm slot on.
    for (int k = 0; k < 4; ++k) {
      ServeRequest warm;
      warm.tenant_id = cast[kNoisy].id;
      warm.example = fixture.trace[k];
      warm.priority = 1;
      const ServeReply reply = router->Predict(std::move(warm));
      CHECK(reply.ok()) << reply.status.ToString();
    }
    return router;
  };

  // Checks shared by every storm pass: bitwise-correct completions, zero
  // hard failures, structured sheds confined to the noisy tenant (which
  // sheds *all* of its storm traffic).
  const auto check_outcomes = [&](const std::vector<TenantOutcome>& outcomes,
                                  const std::string& pass) {
    for (int t = 0; t < num_tenants; ++t) {
      const TenantOutcome& outcome = outcomes[t];
      if (outcome.failures > 0) {
        fail(pass + ": " + cast[t].id + " had " +
             std::to_string(outcome.failures) + " hard failures");
      }
      if (outcome.digest_mismatches > 0) {
        fail(pass + ": " + cast[t].id + " served " +
             std::to_string(outcome.digest_mismatches) +
             " responses diverging from its offline digests");
      }
      if (outcome.malformed_rejects > 0) {
        fail(pass + ": " + cast[t].id + " got " +
             std::to_string(outcome.malformed_rejects) +
             " rejections without a structured RejectInfo");
      }
      if (cast[t].noisy) {
        if (outcome.issued > 0 && outcome.shed != outcome.issued) {
          fail(pass + ": noisy tenant shed " + std::to_string(outcome.shed) +
               " of " + std::to_string(outcome.issued) + " storm requests "
               "(expected all: its EWMA shedder is warm)");
        }
      } else if (outcome.shed > 0) {
        fail(pass + ": " + cast[t].id + " lost " +
             std::to_string(outcome.shed) +
             " requests to another tenant's overload");
      }
    }
  };

  // -- Gate 1: routing / reply determinism across client thread counts -----
  std::vector<uint64_t> reference_digests;
  for (size_t run = 0; run < storm_threads.size(); ++run) {
    const int threads = storm_threads[run];
    std::unique_ptr<ShardRouter> router = build_router();
    const std::vector<TenantOutcome> outcomes = RunStormSlots(
        *router, slots, 0, slots.size(), fixture.trace, cast, threads, rate);
    router->Shutdown();
    check_outcomes(outcomes, "sweep threads=" + std::to_string(threads));
    std::vector<uint64_t> digests(num_tenants);
    for (int t = 0; t < num_tenants; ++t) digests[t] = outcomes[t].digest;
    if (run == 0) {
      reference_digests = digests;
    } else if (digests != reference_digests) {
      fail("per-tenant digests differ between storm client thread counts " +
           std::to_string(storm_threads[0]) + " and " +
           std::to_string(threads));
    }
    LOG(Info) << "storm sweep threads=" << threads << ": "
              << slots.size() << " slots, digests "
              << (run == 0 || digests == reference_digests ? "stable"
                                                           : "DIVERGED");
  }
  const bool thread_independent = passed;

  // -- Gate 2: the measured storm with mid-storm per-tenant rollouts -------
  MetricsRegistry::Global().ResetAll();
  std::string incident_root = flags.GetString("incident-dir");
  if (incident_root.empty()) incident_root = trace_dir + "/incidents-serve-mt";
  std::filesystem::remove_all(incident_root);
  FlightRecorderOptions recorder_options;
  recorder_options.incident_dir = incident_root;
  FlightRecorder::Global().Enable(recorder_options);
  Tracer::Global().Enable();

  // Per-tenant registries for the two rollout tenants, seeded A(active) ->
  // B(candidate) from the fixture's on-disk snapshots.
  const auto open_registry = [&](const std::string& tag) {
    const std::string manifest = fixture.dir + "/mt-" + tag + ".manifest";
    std::remove(manifest.c_str());
    return SnapshotRegistry::Open(manifest);
  };
  Result<SnapshotRegistry> promote_registry = open_registry("promote");
  Result<SnapshotRegistry> rollback_registry = open_registry("rollback");
  CHECK(promote_registry.ok() && rollback_registry.ok());
  const auto seed_registry = [&](SnapshotRegistry& registry) {
    const int64_t id_a =
        *registry.Register(fixture.snapshot_a_path, -1, "baseline");
    CHECK(registry.Activate(id_a).ok());
    return *registry.Register(fixture.snapshot_b_path, id_a, "candidate");
  };
  const int64_t promote_candidate = seed_registry(*promote_registry);
  const int64_t rollback_candidate = seed_registry(*rollback_registry);

  std::unique_ptr<ShardRouter> router = build_router();
  CHECK(router->AttachTenantRegistry(cast[kPromote].id, &*promote_registry)
            .ok());
  CHECK(router->AttachTenantRegistry(cast[kRollback].id, &*rollback_registry)
            .ok());

  const int storm_clients = storm_threads.back();
  const std::vector<TenantOutcome> first_half = RunStormSlots(
      *router, slots, 0, half, fixture.trace, cast, storm_clients, rate);
  check_outcomes(first_half, "storm first half");

  // Overload bypass probe: a priority request from the shedding tenant must
  // still get through, bitwise correct.
  {
    ServeRequest probe;
    probe.tenant_id = cast[kNoisy].id;
    probe.example = fixture.trace[0];
    probe.priority = 1;
    const ServeReply reply = router->Predict(std::move(probe));
    if (!reply.ok() ||
        PredictionDigest(reply.prediction) != (*cast[kNoisy].expected)[0]) {
      fail("priority=1 probe from the overloaded tenant did not serve "
           "bitwise-correctly");
    }
  }

  RolloutOptions rollout_options;
  rollout_options.window = 48;
  rollout_options.canary_fraction = 0.25;
  rollout_options.min_canary_samples = 4;
  rollout_options.seed = 13;
  rollout_options.client_threads = 2;

  const Result<RolloutReport> promoted = RunTenantStagedRollout(
      *router, cast[kPromote].id, promote_candidate, fixture.trace,
      rollout_options);
  if (!promoted.ok() || promoted->decision != RolloutDecision::kPromote) {
    fail("mid-storm promote for " + cast[kPromote].id + " did not promote: " +
         (promoted.ok() ? promoted->Summary() : promoted.status().ToString()));
  }
  cast[kPromote].expected = &fixture.digests_b;

  Result<RolloutReport> rolled_back(Status::Internal("rollout never ran"));
  {
    FaultSpec spec;
    spec.kind = FaultKind::kError;
    FaultScope scope("rollout.canary", spec);
    rolled_back = RunTenantStagedRollout(*router, cast[kRollback].id,
                                         rollback_candidate, fixture.trace,
                                         rollout_options);
  }
  if (!rolled_back.ok() ||
      rolled_back->decision != RolloutDecision::kRollback) {
    fail("forced rollback for " + cast[kRollback].id + " did not roll back: " +
         (rolled_back.ok() ? rolled_back->Summary()
                           : rolled_back.status().ToString()));
  }
  if (promote_registry->active_id() !=
      std::optional<int64_t>(promote_candidate)) {
    fail("promote registry did not activate the candidate");
  }
  if (!rollback_registry->Get(rollback_candidate).ok() ||
      rollback_registry->Get(rollback_candidate)->status !=
          SnapshotStatus::kFailed) {
    fail("rollback registry did not condemn the candidate");
  }

  // Second half: the promoted tenant must now serve B bitwise; the
  // rolled-back tenant and every bystander must still serve exactly what
  // they served before.
  const std::vector<TenantOutcome> second_half =
      RunStormSlots(*router, slots, half, slots.size(), fixture.trace, cast,
                    storm_clients, rate);
  check_outcomes(second_half, "storm second half");

  const Status health = router->CheckHealth();
  if (!health.ok()) fail("router unhealthy after the storm: " +
                         health.ToString());
  std::vector<TenantStats> stats(num_tenants);
  for (int t = 0; t < num_tenants; ++t) {
    Result<TenantStats> tenant_stats = router->StatsFor(cast[t].id);
    CHECK(tenant_stats.ok());
    stats[t] = *tenant_stats;
  }
  router->Shutdown();

  const RunTrace run_trace = Tracer::Global().Collect();
  Tracer::Global().Disable();
  FlightRecorder::Global().Disable();

  // Rollout instants must be in the timeline, tagged with their tenant.
  int promote_instants = 0, rollback_instants = 0;
  for (const TraceEventRecord& event : run_trace.events) {
    if (event.category != "serve.rollout") continue;
    if (event.name == "promote" &&
        event.detail.find(cast[kPromote].id) != std::string::npos) {
      ++promote_instants;
    }
    if (event.name == "rollback" &&
        event.detail.find(cast[kRollback].id) != std::string::npos) {
      ++rollback_instants;
    }
  }
  if (promote_instants != 1) {
    fail("expected exactly 1 tagged promote instant, saw " +
         std::to_string(promote_instants));
  }
  if (rollback_instants != 1) {
    fail("expected exactly 1 tagged rollback instant, saw " +
         std::to_string(rollback_instants));
  }
  // The forced rollback is the storm's only incident: one verified dump.
  const std::vector<std::string> dumps = ListIncidentDumps(incident_root);
  if (dumps.size() != 1) {
    fail("expected exactly 1 incident dump (rollout.rollback), found " +
         std::to_string(dumps.size()));
  }

  // -- Report ---------------------------------------------------------------
  std::ofstream out(flags.GetString("out"), std::ios::trunc);
  out << "{\n";
  out << "  \"benchmark\": \"serving_mt\",\n";
  out << "  \"tenants\": " << num_tenants << ",\n";
  out << "  \"shards\": " << num_shards << ",\n";
  out << "  \"requests\": " << slots.size() << ",\n";
  out << "  \"trace_rows\": " << kTraceRows << ",\n";
  out << "  \"target_rps\": " << rate << ",\n";
  out << "  \"thread_counts\": [";
  for (size_t i = 0; i < storm_threads.size(); ++i) {
    out << (i ? ", " : "") << storm_threads[i];
  }
  out << "],\n";
  out << "  \"thread_independent\": "
      << (thread_independent ? "true" : "false") << ",\n";
  out << "  \"rollout\": {\"promoted_tenant\": \"" << cast[kPromote].id
      << "\", \"rolled_back_tenant\": \"" << cast[kRollback].id
      << "\", \"promote_instants\": " << promote_instants
      << ", \"rollback_instants\": " << rollback_instants << "},\n";
  out << "  \"incidents\": " << dumps.size() << ",\n";
  out << "  \"noisy_tenant\": \"" << cast[kNoisy].id << "\",\n";
  out << "  \"per_tenant\": [\n";
  for (int t = 0; t < num_tenants; ++t) {
    TenantOutcome merged = first_half[t];
    const TenantOutcome& tail = second_half[t];
    merged.issued += tail.issued;
    merged.completed += tail.completed;
    merged.shed += tail.shed;
    merged.failures += tail.failures;
    merged.digest_mismatches += tail.digest_mismatches;
    merged.latencies_ms.insert(merged.latencies_ms.end(),
                               tail.latencies_ms.begin(),
                               tail.latencies_ms.end());
    FoldDigest(merged.digest, tail.digest);
    const Histogram& histogram = MetricsRegistry::Global().histogram(
        "serve.router.latency_ms", {{"tenant", cast[t].id}},
        {0.005, 0.01, 0.025, 0.05, 0.1, 0.5, 1, 2, 5, 10, 25, 50, 100, 250});
    const LatencyStats latency = Summarize(histogram, merged.latencies_ms);
    out << "    {\"tenant\": \"" << cast[t].id << "\", \"shard\": "
        << stats[t].shard << ", \"issued\": " << merged.issued
        << ", \"completed\": " << merged.completed
        << ", \"shed\": " << merged.shed
        << ", \"failures\": " << merged.failures
        << ", \"digest_mismatches\": " << merged.digest_mismatches
        << ", \"digest\": \"" << HexDigest(merged.digest)
        << "\", \"latency\": ";
    AppendLatency(out, latency);
    out << "}" << (t + 1 < num_tenants ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"passed\": " << (passed ? "true" : "false") << "\n";
  out << "}\n";
  out.close();

  SetComputePoolThreads(1);
  std::printf("wrote %s (%d tenants / %d shards, %zu requests, "
              "thread_independent: %s, incidents: %zu, passed: %s)\n",
              flags.GetString("out").c_str(), num_tenants, num_shards,
              slots.size(), thread_independent ? "yes" : "no", dumps.size(),
              passed ? "yes" : "no");
  return passed ? 0 : 1;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddFlag("scale", "0.15", "zoo dataset subsample fraction");
  flags.AddFlag("steps", "20", "AL steps before the first snapshot export");
  flags.AddFlag("requests", "800", "requests per load phase");
  flags.AddFlag("clients", "4", "closed-loop client threads");
  flags.AddFlag("rate", "2000", "open-loop arrival rate (requests/second)");
  flags.AddFlag("batch", "32", "service max batch size for the load phases");
  flags.AddFlag("delay-ms", "2.0", "service max batch delay for the load "
                                   "phases");
  flags.AddFlag("threads", "", "comma-separated compute-pool widths for the "
                               "determinism sweep (default: 1,<hardware>)");
  flags.AddFlag("out", "BENCH_serving.json", "JSON report path");
  flags.AddFlag("seed", "7", "dataset split / pipeline seed");
  flags.AddFlag("tenants", "0", "run the multi-tenant ShardRouter storm with "
                                "this many tenants instead of the classic "
                                "single-service bench (>= 5)");
  flags.AddFlag("shards", "3", "router shards for the multi-tenant storm");
  flags.AddFlag("storm-threads", "1,4",
                "comma-separated client thread counts for the storm's "
                "routing-determinism sweep");
  flags.AddFlag("trace-dir", "bench-archive",
                "directory the SLO status / Prometheus exports land in");
  flags.AddFlag("incident-dir", "",
                "flight-recorder dump root (default "
                "<trace-dir>/incidents-serve-bench); wiped at startup — a "
                "clean run must end with it empty");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 2;
  }
  if (flags.help_requested()) return 0;
  if (flags.GetInt("tenants") > 0) return RunMultiTenantStorm(flags);

  std::vector<int> thread_counts;
  if (flags.GetString("threads").empty()) {
    const int hw = std::max(1u, std::thread::hardware_concurrency());
    thread_counts = {1};
    if (hw > 1) thread_counts.push_back(hw);
  } else {
    for (const std::string& part : Split(flags.GetString("threads"), ',')) {
      if (!part.empty()) thread_counts.push_back(std::stoi(part));
    }
  }
  CHECK(!thread_counts.empty());

  // -- Train a pipeline and export two snapshots (A mid-run, B later) -----
  const int seed = flags.GetInt("seed");
  Result<DataSplit> split =
      MakeZooDataset("youtube", flags.GetDouble("scale"), seed);
  if (!split.ok()) {
    std::fprintf(stderr, "dataset: %s\n", split.status().ToString().c_str());
    return 2;
  }
  const FrameworkContext context = FrameworkContext::Build(*split);
  ActiveDpOptions options;
  options.seed = seed + 16;
  ActiveDp pipeline(context, options);
  const int steps = flags.GetInt("steps");
  for (int t = 0; t < steps; ++t) {
    const Status status = pipeline.Step();
    if (!status.ok()) {
      std::fprintf(stderr, "step %d: %s\n", t, status.ToString().c_str());
      return 2;
    }
  }
  Result<ModelSnapshot> early = ExportSnapshot(pipeline, context);
  if (!early.ok()) {
    std::fprintf(stderr, "export: %s\n", early.status().ToString().c_str());
    return 2;
  }
  const auto snapshot_a =
      std::make_shared<const ModelSnapshot>(std::move(*early));
  for (int t = 0; t < std::max(1, steps / 2); ++t) {
    const Status status = pipeline.Step();
    if (!status.ok()) {
      std::fprintf(stderr, "step: %s\n", status.ToString().c_str());
      return 2;
    }
  }
  Result<ModelSnapshot> late = ExportSnapshot(pipeline, context);
  if (!late.ok()) {
    std::fprintf(stderr, "export: %s\n", late.status().ToString().c_str());
    return 2;
  }
  const auto snapshot_b =
      std::make_shared<const ModelSnapshot>(std::move(*late));
  const Dataset& train = split->train;
  LOG(Info) << "snapshot: " << snapshot_a->state().lfs.size() << " LFs, dim "
            << snapshot_a->feature_dim() << ", train " << train.size();

  // -- Determinism gate ---------------------------------------------------
  // Reference digest: single-row offline predictions, serial pool.
  SetComputePoolThreads(1);
  const int gate_rows = std::min(train.size(), 96);
  BitHasher reference;
  for (int i = 0; i < gate_rows; ++i) {
    const Result<ServedPrediction> offline =
        snapshot_a->Predict(train.example(i));
    if (!offline.ok()) {
      std::fprintf(stderr, "offline predict: %s\n",
                   offline.status().ToString().c_str());
      return 2;
    }
    reference.Add(*offline);
  }

  bool deterministic = true;
  int configs_checked = 0;
  for (int threads : thread_counts) {
    SetComputePoolThreads(threads);
    for (int batch_size : {1, 8, 32}) {
      const uint64_t digest =
          ServedDigest(snapshot_a, train, gate_rows, batch_size);
      ++configs_checked;
      if (digest != reference.digest()) {
        deterministic = false;
        std::fprintf(stderr,
                     "FAIL: served digest differs at threads=%d batch=%d "
                     "(%s vs offline %s)\n",
                     threads, batch_size, HexDigest(digest).c_str(),
                     HexDigest(reference.digest()).c_str());
      }
    }
  }

  // Hot swap under full load on the widest pool.
  SetComputePoolThreads(thread_counts.back());
  const int hot_swap_requests = std::min(flags.GetInt("requests"), 400);
  const int hot_swap_mismatches =
      RunHotSwapGate(snapshot_a, snapshot_b, train, hot_swap_requests,
                     flags.GetInt("clients"), /*swaps=*/20);
  if (hot_swap_mismatches > 0) {
    deterministic = false;
    std::fprintf(stderr, "FAIL: %d hot-swap responses matched neither "
                         "snapshot\n", hot_swap_mismatches);
  }

  // -- Load phases (metrics reset so the histogram covers only these) -----
  MetricsRegistry::Global().ResetAll();

  // OpsPlane: flight recorder armed with the burst triggers enabled so a
  // false fire would be caught (the clean-run gate below demands zero
  // dumps), and a burn-rate SLO engine sampling the registry during load.
  const std::string trace_dir = flags.GetString("trace-dir");
  std::string incident_root = flags.GetString("incident-dir");
  if (incident_root.empty()) {
    incident_root = trace_dir + "/incidents-serve-bench";
  }
  std::filesystem::remove_all(incident_root);
  FlightRecorderOptions recorder_options;
  recorder_options.incident_dir = incident_root;
  FlightRecorder::Global().Enable(recorder_options);

  SloEngine slo(DefaultServingSlos());
  PredictionServiceOptions serve_options;
  serve_options.max_batch_size = flags.GetInt("batch");
  serve_options.max_batch_delay_ms = flags.GetDouble("delay-ms");
  serve_options.shed_burst_threshold = 64;
  serve_options.deadline_storm_threshold = 64;
  PredictionService service(serve_options);
  service.AttachSloEngine(&slo);
  service.LoadSnapshot(snapshot_a);

  const int requests = flags.GetInt("requests");
  const int clients = flags.GetInt("clients");
  const double rate = flags.GetDouble("rate");
  slo.Tick();  // baseline sample: burn rates are deltas against this
  const LoadResult closed =
      RunClosedLoop(service, train, requests, clients, &slo);
  LOG(Info) << "closed loop: " << closed.throughput_rps << " rps, p50 "
            << closed.latency.p50 << "ms p99 " << closed.latency.p99 << "ms";
  const LoadResult open = RunOpenLoop(service, train, requests, rate, &slo);
  LOG(Info) << "open loop: " << open.throughput_rps << " rps (target " << rate
            << "), p50 " << open.latency.p50 << "ms p99 " << open.latency.p99
            << "ms";
  slo.Tick();  // final sample so the evaluation covers the whole load
  const ServiceHealth health = service.Health();
  if (!health.ok || !health.has_snapshot) {
    std::fprintf(stderr, "FAIL: service unhealthy after the load phases\n");
    deterministic = false;
  }
  service.Shutdown();
  service.AttachSloEngine(nullptr);
  FlightRecorder::Global().Disable();
  SetComputePoolThreads(1);

  // Clean-run incident gate: no breaker trip, shed burst, or deadline storm
  // should have fired, so the dump root must be empty.
  const std::vector<std::string> dumps = ListIncidentDumps(incident_root);
  if (!dumps.empty()) {
    std::fprintf(stderr,
                 "FAIL: clean run produced %zu incident dump(s), first: %s\n",
                 dumps.size(), dumps.front().c_str());
    deterministic = false;
  }

  // SLO status + Prometheus exposition, archived next to the trace exports.
  const SloStatus slo_status = slo.Evaluate();
  const bool slos_met = slo_status.all_met();
  std::filesystem::create_directories(trace_dir);
  const Status slo_written =
      slo.ExportStatus(trace_dir + "/BENCH_serving.slo.json");
  const Status prom_written =
      AtomicWriteFile(trace_dir + "/BENCH_serving.prom",
                      MetricsRegistry::Global().ToPrometheusText());
  if (!slo_written.ok() || !prom_written.ok()) {
    std::fprintf(stderr, "FAIL: status export failed\n");
    deterministic = false;
  }
  if (!slos_met) {
    for (const SloResult& result : slo_status.results) {
      if (result.met) continue;
      std::fprintf(stderr, "FAIL: SLO breached on a clean run: %s (%s)\n",
                   result.name.c_str(), result.detail.c_str());
    }
    deterministic = false;
  }

  WriteJson(flags.GetString("out"), *snapshot_a, train, deterministic,
            configs_checked, hot_swap_requests, hot_swap_mismatches, closed,
            clients, open, rate, health, static_cast<int>(dumps.size()),
            slos_met);
  std::printf("wrote %s (closed %0.0f rps, open %0.0f rps, deterministic: "
              "%s, incidents: %zu, slos_met: %s)\n",
              flags.GetString("out").c_str(), closed.throughput_rps,
              open.throughput_rps, deterministic ? "yes" : "no", dumps.size(),
              slos_met ? "yes" : "no");
  if (closed.failures + open.failures > 0) {
    std::fprintf(stderr, "FAIL: %d load-phase requests failed\n",
                 closed.failures + open.failures);
    return 1;
  }
  return deterministic ? 0 : 1;
}

}  // namespace
}  // namespace activedp

int main(int argc, char** argv) { return activedp::Main(argc, argv); }
