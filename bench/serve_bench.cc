// Serving benchmark for the ServeDP stack: trains a small pipeline, exports
// a ModelSnapshot, and drives a PredictionService under closed-loop load
// (a fixed set of clients issuing back-to-back requests) and open-loop load
// (requests arriving at a target rate regardless of completions). Writes
// throughput, p50/p95/p99 latency and the observed micro-batch-size
// histogram to a JSON report (BENCH_serving.json).
//
// Determinism is asserted unconditionally, mirroring perf_bench: every
// served prediction is digested (FNV-1a over raw double bit patterns) and
// compared against the offline ConFusion aggregation, sweeping batch sizes
// and compute-pool thread counts, plus a hot-swap-under-load pass where
// each response must bitwise match one of the two published snapshots.
// Any mismatch fails the run with exit code 1.
//
//   ./build/bench/serve_bench --requests=2000 --clients=8 --rate=4000
//       --out=BENCH_serving.json
//
// Registered as a ctest with LABELS serve at a small smoke size.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/activedp.h"
#include "core/framework.h"
#include "data/dataset_zoo.h"
#include "obs/flight_recorder.h"
#include "obs/slo.h"
#include "serve/model_snapshot.h"
#include "serve/prediction_service.h"
#include "serve/snapshot_export.h"
#include "util/atomic_file.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace activedp {
namespace {

class BitHasher {
 public:
  void Add(double value) {
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    AddBits(bits);
  }
  void Add(int value) { AddBits(static_cast<uint64_t>(value)); }
  void Add(const ServedPrediction& prediction) {
    Add(prediction.label);
    Add(static_cast<int>(prediction.source));
    for (double p : prediction.proba) Add(p);
  }
  uint64_t digest() const { return hash_; }

 private:
  void AddBits(uint64_t bits) {
    for (int byte = 0; byte < 8; ++byte) {
      hash_ ^= (bits >> (8 * byte)) & 0xffu;
      hash_ *= 0x100000001b3ULL;
    }
  }
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

std::string HexDigest(uint64_t digest) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(digest));
  return buffer;
}

/// Latency percentiles over one load phase (all values in milliseconds).
/// p50/p95/p99 come from Histogram::Quantile over the labelled
/// serve.client_latency_ms{phase=...} series — the same buckets the JSON
/// and Prometheus exports publish, so the summary and the exported
/// histogram can never disagree (see HistogramQuantile in util/metrics.h
/// for the interpolation rule and its bucket-width error bounds). mean and
/// max are exact over the raw samples.
struct LatencyStats {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

/// Bucket bounds for the per-request client latency histograms. Finer than
/// the service's batch-latency buckets because quantiles interpolate within
/// a bucket: the quantile error is at most the containing bucket's width.
const std::vector<double>& ClientLatencyBounds() {
  static const std::vector<double> bounds = {
      0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2, 3, 5, 8, 12, 20, 50, 100, 250};
  return bounds;
}

Histogram& PhaseLatencyHistogram(const std::string& phase) {
  return MetricsRegistry::Global().histogram(
      "serve.client_latency_ms", {{"phase", phase}}, ClientLatencyBounds());
}

LatencyStats Summarize(const Histogram& histogram,
                       const std::vector<double>& latencies_ms) {
  LatencyStats stats;
  if (latencies_ms.empty()) return stats;
  stats.p50 = histogram.Quantile(0.50);
  stats.p95 = histogram.Quantile(0.95);
  stats.p99 = histogram.Quantile(0.99);
  double sum = 0.0;
  for (double v : latencies_ms) {
    sum += v;
    stats.max = std::max(stats.max, v);
  }
  stats.mean = sum / latencies_ms.size();
  return stats;
}

struct LoadResult {
  int requests = 0;
  int failures = 0;
  double seconds = 0.0;
  double throughput_rps = 0.0;
  LatencyStats latency;
};

/// Closed loop: `clients` threads, each issuing its share of `requests`
/// back-to-back (a new request only after the previous response). Measures
/// the service's sustainable throughput.
LoadResult RunClosedLoop(PredictionService& service, const Dataset& train,
                         int requests, int clients, SloEngine* slo) {
  LoadResult result;
  result.requests = requests;
  Histogram& histogram = PhaseLatencyHistogram("closed");
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<int> failures{0};
  Timer wall;
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      const int share = requests / clients + (c < requests % clients ? 1 : 0);
      latencies[c].reserve(share);
      for (int k = 0; k < share; ++k) {
        const int row = (c + k * clients) % train.size();
        Timer timer;
        const Result<ServedPrediction> served =
            service.Predict(train.example(row));
        const double elapsed_ms = timer.ElapsedMillis();
        histogram.Observe(elapsed_ms);
        latencies[c].push_back(elapsed_ms);
        if (!served.ok()) failures.fetch_add(1);
        if (slo != nullptr) slo->MaybeTick(0.25);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  result.seconds = wall.ElapsedSeconds();
  result.failures = failures.load();
  std::vector<double> all;
  all.reserve(requests);
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  result.throughput_rps =
      result.seconds > 0.0 ? requests / result.seconds : 0.0;
  result.latency = Summarize(histogram, all);
  return result;
}

/// Open loop: one issuing thread schedules arrivals at `rate` per second
/// (independent of completions — queueing delay shows up in the latency
/// tail) while a collector drains the futures in FIFO order, which is also
/// their completion order under the single dispatcher.
LoadResult RunOpenLoop(PredictionService& service, const Dataset& train,
                       int requests, double rate, SloEngine* slo) {
  using Clock = std::chrono::steady_clock;
  LoadResult result;
  result.requests = requests;
  std::vector<std::future<Result<ServedPrediction>>> futures(requests);
  std::vector<Clock::time_point> sent(requests);
  std::vector<double> latencies(requests, 0.0);
  std::atomic<int> issued{0};
  std::atomic<int> failures{0};

  Timer wall;
  const Clock::time_point start = Clock::now();
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / rate));

  Histogram& histogram = PhaseLatencyHistogram("open");
  std::thread collector([&] {
    for (int i = 0; i < requests; ++i) {
      while (issued.load(std::memory_order_acquire) <= i) {
        std::this_thread::yield();
      }
      const Result<ServedPrediction> served = futures[i].get();
      latencies[i] = std::chrono::duration<double, std::milli>(Clock::now() -
                                                              sent[i])
                         .count();
      histogram.Observe(latencies[i]);
      if (!served.ok()) failures.fetch_add(1);
    }
  });
  for (int i = 0; i < requests; ++i) {
    std::this_thread::sleep_until(start + i * interval);
    sent[i] = Clock::now();
    futures[i] = service.PredictAsync(train.example(i % train.size()));
    issued.store(i + 1, std::memory_order_release);
    if (slo != nullptr) slo->MaybeTick(0.25);
  }
  collector.join();
  result.seconds = wall.ElapsedSeconds();
  result.failures = failures.load();
  result.throughput_rps =
      result.seconds > 0.0 ? requests / result.seconds : 0.0;
  result.latency = Summarize(histogram, latencies);
  return result;
}

/// Served digest over the first `n` training rows at one (batch size,
/// thread count) configuration.
uint64_t ServedDigest(const std::shared_ptr<const ModelSnapshot>& snapshot,
                      const Dataset& train, int n, int batch_size) {
  PredictionServiceOptions options;
  options.max_batch_size = batch_size;
  options.max_batch_delay_ms = 0.5;
  options.max_queue_depth = n + 1;
  PredictionService service(options);
  service.LoadSnapshot(snapshot);
  std::vector<std::future<Result<ServedPrediction>>> futures;
  futures.reserve(n);
  for (int i = 0; i < n; ++i) {
    futures.push_back(service.PredictAsync(train.example(i)));
  }
  BitHasher hasher;
  for (int i = 0; i < n; ++i) {
    const Result<ServedPrediction> served = futures[i].get();
    if (!served.ok()) {
      LOG(Error) << "serve failed at row " << i << ": "
                 << served.status().ToString();
      return 0;
    }
    hasher.Add(*served);
  }
  return hasher.digest();
}

/// Hot-swap gate: clients hammer the service while snapshots A and B are
/// swapped repeatedly; every response must bitwise match A's or B's offline
/// prediction for that row. Returns the number of mismatches.
int RunHotSwapGate(const std::shared_ptr<const ModelSnapshot>& a,
                   const std::shared_ptr<const ModelSnapshot>& b,
                   const Dataset& train, int requests, int clients,
                   int swaps) {
  PredictionServiceOptions options;
  options.max_batch_size = 8;
  options.max_batch_delay_ms = 0.2;
  PredictionService service(options);
  service.LoadSnapshot(a);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(clients);
  const int per_client = requests / clients;
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      for (int k = 0; k < per_client; ++k) {
        const int row = (c * per_client + k) % train.size();
        const Result<ServedPrediction> served =
            service.Predict(train.example(row));
        if (!served.ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        const Result<ServedPrediction> via_a = a->Predict(train.example(row));
        const Result<ServedPrediction> via_b = b->Predict(train.example(row));
        const bool matches_a = via_a.ok() && served->proba == via_a->proba &&
                               served->label == via_a->label;
        const bool matches_b = via_b.ok() && served->proba == via_b->proba &&
                               served->label == via_b->label;
        if (!matches_a && !matches_b) mismatches.fetch_add(1);
      }
    });
  }
  for (int swap = 0; swap < swaps; ++swap) {
    service.LoadSnapshot(swap % 2 == 0 ? b : a);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (std::thread& t : workers) t.join();
  return mismatches.load();
}

void AppendLatency(std::ofstream& out, const LatencyStats& stats) {
  out << "{\"p50_ms\": " << stats.p50 << ", \"p95_ms\": " << stats.p95
      << ", \"p99_ms\": " << stats.p99 << ", \"mean_ms\": " << stats.mean
      << ", \"max_ms\": " << stats.max << "}";
}

void AppendHistogram(std::ofstream& out, const Histogram& histogram) {
  out << "[";
  for (int bucket = 0; bucket < histogram.num_buckets(); ++bucket) {
    if (bucket > 0) out << ", ";
    out << "{\"le\": ";
    if (bucket < static_cast<int>(histogram.bounds().size())) {
      out << histogram.bounds()[bucket];
    } else {
      out << "\"inf\"";
    }
    out << ", \"count\": " << histogram.bucket_count(bucket) << "}";
  }
  out << "]";
}

void AppendLoad(std::ofstream& out, const LoadResult& load) {
  out << "\"requests\": " << load.requests
      << ", \"failures\": " << load.failures
      << ", \"seconds\": " << load.seconds
      << ", \"throughput_rps\": " << load.throughput_rps
      << ", \"latency\": ";
  AppendLatency(out, load.latency);
}

void WriteJson(const std::string& path, const ModelSnapshot& snapshot,
               const Dataset& train, bool deterministic, int configs_checked,
               int hot_swap_requests, int hot_swap_mismatches,
               const LoadResult& closed, int clients, const LoadResult& open,
               double rate, const ServiceHealth& health, int incidents,
               bool slos_met) {
  std::ofstream out(path, std::ios::trunc);
  out << "{\n";
  out << "  \"benchmark\": \"serving\",\n";
  out << "  \"dataset\": \"" << snapshot.state().dataset << "\",\n";
  out << "  \"train_examples\": " << train.size() << ",\n";
  out << "  \"snapshot\": {\"classes\": " << snapshot.num_classes()
      << ", \"dim\": " << snapshot.feature_dim()
      << ", \"lfs\": " << snapshot.state().lfs.size()
      << ", \"threshold\": " << snapshot.threshold()
      << ", \"has_end_model\": " << (snapshot.has_end_model() ? "true" : "false")
      << "},\n";
  out << "  \"determinism\": {\"passed\": "
      << (deterministic ? "true" : "false")
      << ", \"configs_checked\": " << configs_checked
      << ", \"hot_swap_requests\": " << hot_swap_requests
      << ", \"hot_swap_mismatches\": " << hot_swap_mismatches << "},\n";
  out << "  \"closed_loop\": {\"clients\": " << clients << ", ";
  AppendLoad(out, closed);
  out << "},\n";
  out << "  \"open_loop\": {\"target_rps\": " << rate << ", ";
  AppendLoad(out, open);
  out << "},\n";
  // The micro-batch-size and batch-latency distributions the dispatcher
  // actually observed during the two load phases (registry is reset before
  // them). Bounds mirror the service's own registration in
  // prediction_service.cc; the registry keeps the first-registered bounds
  // for an existing name, so these are documentation as much as defaults.
  const Histogram& sizes = MetricsRegistry::Global().histogram(
      "serve.batch_size", {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64, 128});
  out << "  \"batch_size_histogram\": ";
  AppendHistogram(out, sizes);
  out << ",\n";
  const Histogram& latencies = MetricsRegistry::Global().histogram(
      "serve.batch_latency_ms",
      {0.005, 0.01, 0.025, 0.05, 0.1, 0.5, 1, 2, 5, 10, 25, 50, 100});
  out << "  \"batch_latency_ms_histogram\": ";
  AppendHistogram(out, latencies);
  out << ",\n";
  out << "  \"batches\": "
      << MetricsRegistry::Global().counter_value("serve.batches") << ",\n";
  out << "  \"served_requests\": "
      << MetricsRegistry::Global().counter_value("serve.requests") << ",\n";
  // Health probe captured at the end of the load phases, just before
  // Shutdown — what a monitoring scrape of the service would have seen.
  out << "  \"health\": {\"ok\": " << (health.ok ? "true" : "false")
      << ", \"shutdown\": " << (health.shutdown ? "true" : "false")
      << ", \"has_snapshot\": " << (health.has_snapshot ? "true" : "false")
      << ", \"queue_depth\": " << health.queue_depth
      << ", \"estimated_queue_delay_ms\": " << health.estimated_queue_delay_ms
      << ", \"breaker_trips\": " << health.breaker_trips << "},\n";
  // Flight-recorder dumps produced during the load phases (a clean run must
  // report zero) and the SLO verdict from the exported burn-rate status.
  out << "  \"incidents\": " << incidents << ",\n";
  out << "  \"slos_met\": " << (slos_met ? "true" : "false") << "\n";
  out << "}\n";
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddFlag("scale", "0.15", "zoo dataset subsample fraction");
  flags.AddFlag("steps", "20", "AL steps before the first snapshot export");
  flags.AddFlag("requests", "800", "requests per load phase");
  flags.AddFlag("clients", "4", "closed-loop client threads");
  flags.AddFlag("rate", "2000", "open-loop arrival rate (requests/second)");
  flags.AddFlag("batch", "32", "service max batch size for the load phases");
  flags.AddFlag("delay-ms", "2.0", "service max batch delay for the load "
                                   "phases");
  flags.AddFlag("threads", "", "comma-separated compute-pool widths for the "
                               "determinism sweep (default: 1,<hardware>)");
  flags.AddFlag("out", "BENCH_serving.json", "JSON report path");
  flags.AddFlag("seed", "7", "dataset split / pipeline seed");
  flags.AddFlag("trace-dir", "bench-archive",
                "directory the SLO status / Prometheus exports land in");
  flags.AddFlag("incident-dir", "",
                "flight-recorder dump root (default "
                "<trace-dir>/incidents-serve-bench); wiped at startup — a "
                "clean run must end with it empty");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 2;
  }
  if (flags.help_requested()) return 0;

  std::vector<int> thread_counts;
  if (flags.GetString("threads").empty()) {
    const int hw = std::max(1u, std::thread::hardware_concurrency());
    thread_counts = {1};
    if (hw > 1) thread_counts.push_back(hw);
  } else {
    for (const std::string& part : Split(flags.GetString("threads"), ',')) {
      if (!part.empty()) thread_counts.push_back(std::stoi(part));
    }
  }
  CHECK(!thread_counts.empty());

  // -- Train a pipeline and export two snapshots (A mid-run, B later) -----
  const int seed = flags.GetInt("seed");
  Result<DataSplit> split =
      MakeZooDataset("youtube", flags.GetDouble("scale"), seed);
  if (!split.ok()) {
    std::fprintf(stderr, "dataset: %s\n", split.status().ToString().c_str());
    return 2;
  }
  const FrameworkContext context = FrameworkContext::Build(*split);
  ActiveDpOptions options;
  options.seed = seed + 16;
  ActiveDp pipeline(context, options);
  const int steps = flags.GetInt("steps");
  for (int t = 0; t < steps; ++t) {
    const Status status = pipeline.Step();
    if (!status.ok()) {
      std::fprintf(stderr, "step %d: %s\n", t, status.ToString().c_str());
      return 2;
    }
  }
  Result<ModelSnapshot> early = ExportSnapshot(pipeline, context);
  if (!early.ok()) {
    std::fprintf(stderr, "export: %s\n", early.status().ToString().c_str());
    return 2;
  }
  const auto snapshot_a =
      std::make_shared<const ModelSnapshot>(std::move(*early));
  for (int t = 0; t < std::max(1, steps / 2); ++t) {
    const Status status = pipeline.Step();
    if (!status.ok()) {
      std::fprintf(stderr, "step: %s\n", status.ToString().c_str());
      return 2;
    }
  }
  Result<ModelSnapshot> late = ExportSnapshot(pipeline, context);
  if (!late.ok()) {
    std::fprintf(stderr, "export: %s\n", late.status().ToString().c_str());
    return 2;
  }
  const auto snapshot_b =
      std::make_shared<const ModelSnapshot>(std::move(*late));
  const Dataset& train = split->train;
  LOG(Info) << "snapshot: " << snapshot_a->state().lfs.size() << " LFs, dim "
            << snapshot_a->feature_dim() << ", train " << train.size();

  // -- Determinism gate ---------------------------------------------------
  // Reference digest: single-row offline predictions, serial pool.
  SetComputePoolThreads(1);
  const int gate_rows = std::min(train.size(), 96);
  BitHasher reference;
  for (int i = 0; i < gate_rows; ++i) {
    const Result<ServedPrediction> offline =
        snapshot_a->Predict(train.example(i));
    if (!offline.ok()) {
      std::fprintf(stderr, "offline predict: %s\n",
                   offline.status().ToString().c_str());
      return 2;
    }
    reference.Add(*offline);
  }

  bool deterministic = true;
  int configs_checked = 0;
  for (int threads : thread_counts) {
    SetComputePoolThreads(threads);
    for (int batch_size : {1, 8, 32}) {
      const uint64_t digest =
          ServedDigest(snapshot_a, train, gate_rows, batch_size);
      ++configs_checked;
      if (digest != reference.digest()) {
        deterministic = false;
        std::fprintf(stderr,
                     "FAIL: served digest differs at threads=%d batch=%d "
                     "(%s vs offline %s)\n",
                     threads, batch_size, HexDigest(digest).c_str(),
                     HexDigest(reference.digest()).c_str());
      }
    }
  }

  // Hot swap under full load on the widest pool.
  SetComputePoolThreads(thread_counts.back());
  const int hot_swap_requests = std::min(flags.GetInt("requests"), 400);
  const int hot_swap_mismatches =
      RunHotSwapGate(snapshot_a, snapshot_b, train, hot_swap_requests,
                     flags.GetInt("clients"), /*swaps=*/20);
  if (hot_swap_mismatches > 0) {
    deterministic = false;
    std::fprintf(stderr, "FAIL: %d hot-swap responses matched neither "
                         "snapshot\n", hot_swap_mismatches);
  }

  // -- Load phases (metrics reset so the histogram covers only these) -----
  MetricsRegistry::Global().ResetAll();

  // OpsPlane: flight recorder armed with the burst triggers enabled so a
  // false fire would be caught (the clean-run gate below demands zero
  // dumps), and a burn-rate SLO engine sampling the registry during load.
  const std::string trace_dir = flags.GetString("trace-dir");
  std::string incident_root = flags.GetString("incident-dir");
  if (incident_root.empty()) {
    incident_root = trace_dir + "/incidents-serve-bench";
  }
  std::filesystem::remove_all(incident_root);
  FlightRecorderOptions recorder_options;
  recorder_options.incident_dir = incident_root;
  FlightRecorder::Global().Enable(recorder_options);

  SloEngine slo(DefaultServingSlos());
  PredictionServiceOptions serve_options;
  serve_options.max_batch_size = flags.GetInt("batch");
  serve_options.max_batch_delay_ms = flags.GetDouble("delay-ms");
  serve_options.shed_burst_threshold = 64;
  serve_options.deadline_storm_threshold = 64;
  PredictionService service(serve_options);
  service.AttachSloEngine(&slo);
  service.LoadSnapshot(snapshot_a);

  const int requests = flags.GetInt("requests");
  const int clients = flags.GetInt("clients");
  const double rate = flags.GetDouble("rate");
  slo.Tick();  // baseline sample: burn rates are deltas against this
  const LoadResult closed =
      RunClosedLoop(service, train, requests, clients, &slo);
  LOG(Info) << "closed loop: " << closed.throughput_rps << " rps, p50 "
            << closed.latency.p50 << "ms p99 " << closed.latency.p99 << "ms";
  const LoadResult open = RunOpenLoop(service, train, requests, rate, &slo);
  LOG(Info) << "open loop: " << open.throughput_rps << " rps (target " << rate
            << "), p50 " << open.latency.p50 << "ms p99 " << open.latency.p99
            << "ms";
  slo.Tick();  // final sample so the evaluation covers the whole load
  const ServiceHealth health = service.Health();
  if (!health.ok || !health.has_snapshot) {
    std::fprintf(stderr, "FAIL: service unhealthy after the load phases\n");
    deterministic = false;
  }
  service.Shutdown();
  service.AttachSloEngine(nullptr);
  FlightRecorder::Global().Disable();
  SetComputePoolThreads(1);

  // Clean-run incident gate: no breaker trip, shed burst, or deadline storm
  // should have fired, so the dump root must be empty.
  const std::vector<std::string> dumps = ListIncidentDumps(incident_root);
  if (!dumps.empty()) {
    std::fprintf(stderr,
                 "FAIL: clean run produced %zu incident dump(s), first: %s\n",
                 dumps.size(), dumps.front().c_str());
    deterministic = false;
  }

  // SLO status + Prometheus exposition, archived next to the trace exports.
  const SloStatus slo_status = slo.Evaluate();
  const bool slos_met = slo_status.all_met();
  std::filesystem::create_directories(trace_dir);
  const Status slo_written =
      slo.ExportStatus(trace_dir + "/BENCH_serving.slo.json");
  const Status prom_written =
      AtomicWriteFile(trace_dir + "/BENCH_serving.prom",
                      MetricsRegistry::Global().ToPrometheusText());
  if (!slo_written.ok() || !prom_written.ok()) {
    std::fprintf(stderr, "FAIL: status export failed\n");
    deterministic = false;
  }
  if (!slos_met) {
    for (const SloResult& result : slo_status.results) {
      if (result.met) continue;
      std::fprintf(stderr, "FAIL: SLO breached on a clean run: %s (%s)\n",
                   result.name.c_str(), result.detail.c_str());
    }
    deterministic = false;
  }

  WriteJson(flags.GetString("out"), *snapshot_a, train, deterministic,
            configs_checked, hot_swap_requests, hot_swap_mismatches, closed,
            clients, open, rate, health, static_cast<int>(dumps.size()),
            slos_met);
  std::printf("wrote %s (closed %0.0f rps, open %0.0f rps, deterministic: "
              "%s, incidents: %zu, slos_met: %s)\n",
              flags.GetString("out").c_str(), closed.throughput_rps,
              open.throughput_rps, deterministic ? "yes" : "no", dumps.size(),
              slos_met ? "yes" : "no");
  if (closed.failures + open.failures > 0) {
    std::fprintf(stderr, "FAIL: %d load-phase requests failed\n",
                 closed.failures + open.failures);
    return 1;
  }
  return deterministic ? 0 : 1;
}

}  // namespace
}  // namespace activedp

int main(int argc, char** argv) { return activedp::Main(argc, argv); }
