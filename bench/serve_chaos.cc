// Serving chaos gate: drives the full serving-side fault matrix (every
// serve.* fault site × fault kind × seed, see serve/chaos_scenario.h) and
// asserts the ServeGuard contract:
//
//   1. nothing crashes: every injected fault is cleanly rejected (non-OK
//      status, detected corruption) or auto-recovered (circuit breaker back
//      to last-known-good, staged-rollout rollback, absorbed latency spike);
//   2. zero served-digest divergence on the surviving path — after every
//      fault, responses stay bitwise identical to the offline prediction of
//      whichever snapshot should be active;
//   3. registry writes are all-or-nothing: failed or torn manifest saves
//      never leave partial state, and a torn file is detected on reopen;
//   4. the auto-rollback is visible in the RunTrace timeline (the run fails
//      if no serve.registry/serve.rollout rollback instant was recorded).
//
// Writes a JSON accounting report (BENCH_serve_chaos.json) plus the full
// trace (BENCH_serve_chaos.trace.*). Registered as a ctest with LABELS
// chaos; also a standalone binary:
//   ./build/bench/serve_chaos --seeds=2 --steps=12 --trace=48

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "serve/chaos_scenario.h"
#include "util/atomic_file.h"
#include "util/fault.h"
#include "util/flags.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace activedp {
namespace {

struct ScenarioRow {
  std::string site;
  std::string kind;
  uint64_t seed;
  ServeChaosOutcome outcome;
};

void WriteReport(const std::string& path, const std::vector<ScenarioRow>& rows,
                 int failures, int rollback_instants, double total_seconds) {
  std::string out;
  out += "{\n";
  out += "  \"benchmark\": \"serve_chaos\",\n";
  out += "  \"scenarios\": " + std::to_string(rows.size()) + ",\n";
  out += "  \"failures\": " + std::to_string(failures) + ",\n";
  out += "  \"rollback_instants\": " + std::to_string(rollback_instants) +
         ",\n";
  out += "  \"breaker_trips\": " +
         std::to_string(
             MetricsRegistry::Global().counter_value("serve.breaker_trips")) +
         ",\n";
  out += "  \"rollout_rollbacks\": " +
         std::to_string(MetricsRegistry::Global().counter_value(
             "serve.rollout.rollbacks")) +
         ",\n";
  out += "  \"registry_rollbacks\": " +
         std::to_string(MetricsRegistry::Global().counter_value(
             "serve.registry.rollbacks")) +
         ",\n";
  out += "  \"total_seconds\": " + std::to_string(total_seconds) + ",\n";
  out += "  \"matrix\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScenarioRow& row = rows[i];
    out += "    {\"site\": \"" + row.site + "\", \"kind\": \"" + row.kind +
           "\", \"seed\": " + std::to_string(row.seed) +
           ", \"passed\": " + (row.outcome.passed ? "true" : "false") +
           ", \"fires\": " + std::to_string(row.outcome.fires) +
           ", \"evidence\": " + std::to_string(row.outcome.evidence) +
           ", \"digest_mismatches\": " +
           std::to_string(row.outcome.digest_mismatches) + "}";
    out += i + 1 < rows.size() ? ",\n" : "\n";
  }
  out += "  ]\n";
  out += "}\n";
  const Status written = AtomicWriteFile(path, out);
  if (!written.ok()) {
    std::fprintf(stderr, "report write failed: %s\n",
                 written.ToString().c_str());
  }
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddFlag("dataset", "youtube", "zoo dataset behind the snapshots");
  flags.AddFlag("scale", "0.1", "fraction of paper dataset sizes");
  flags.AddFlag("seeds", "2", "number of seeds swept through the matrix");
  flags.AddFlag("steps", "12", "protocol steps before snapshot A (plus "
                               "half as many more before B)");
  flags.AddFlag("trace", "48", "request trace length per scenario");
  flags.AddFlag("out", "BENCH_serve_chaos.json", "JSON report path");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 2;
  }
  if (flags.help_requested()) return 0;

  const std::string tmpdir =
      (std::filesystem::temp_directory_path() / "activedp-serve-chaos")
          .string();
  std::filesystem::create_directories(tmpdir);

  MetricsRegistry::Global().ResetAll();
  Tracer::Global().Enable();

  std::vector<ScenarioRow> rows;
  int failures = 0;
  Timer total;
  const int num_seeds = flags.GetInt("seeds");
  const int steps = flags.GetInt("steps");
  for (int s = 0; s < num_seeds; ++s) {
    const uint64_t seed = 7 + 1000003ULL * s;
    const Result<ServeChaosFixture> fixture = BuildServeChaosFixture(
        tmpdir, flags.GetString("dataset"), flags.GetDouble("scale"), seed,
        steps, std::max(1, steps / 2), flags.GetInt("trace"));
    if (!fixture.ok()) {
      std::fprintf(stderr, "fixture build failed (seed %llu): %s\n",
                   static_cast<unsigned long long>(seed),
                   fixture.status().ToString().c_str());
      return 1;
    }
    for (const ServeChaosSiteInfo& info : ServeChaosSites()) {
      for (const FaultKind kind : ServeChaosKinds()) {
        ScenarioRow row;
        row.site = info.site;
        row.kind = std::string(FaultKindToString(kind));
        row.seed = seed;
        row.outcome = RunServeChaosScenario(*fixture, info.site, kind, seed);
        std::printf("%-6s %-20s %-14s fires=%-4d evidence=%-3d "
                    "digest_mismatches=%-3d %6.2fs\n",
                    row.outcome.passed ? "ok" : "FAIL", row.site.c_str(),
                    row.kind.c_str(), row.outcome.fires, row.outcome.evidence,
                    row.outcome.digest_mismatches,
                    row.outcome.elapsed_seconds);
        if (!row.outcome.passed) {
          ++failures;
          std::fprintf(stderr, "  seed %llu: %s\n",
                       static_cast<unsigned long long>(seed),
                       row.outcome.failure.c_str());
        }
        rows.push_back(std::move(row));
      }
    }
  }

  const RunTrace trace = Tracer::Global().Collect();
  Tracer::Global().Disable();

  // The acceptance check the whole harness exists for: the auto-rollback
  // must be *visible in the timeline*, not just implied by return values.
  int rollback_instants = 0;
  for (const TraceEventRecord& event : trace.events) {
    if ((event.category == "serve.registry" ||
         event.category == "serve.rollout") &&
        event.name == "rollback") {
      ++rollback_instants;
    }
  }
  if (rollback_instants == 0) {
    ++failures;
    std::fprintf(stderr,
                 "FAIL: no rollback instant in the RunTrace timeline\n");
  }

  std::printf("\n%s", trace.Summary().ToString().c_str());
  const Status trace_written = WriteRunTrace(trace, ".", "BENCH_serve_chaos");
  if (!trace_written.ok()) {
    std::fprintf(stderr, "trace export failed: %s\n",
                 trace_written.ToString().c_str());
  }
  WriteReport(flags.GetString("out"), rows, failures, rollback_instants,
              total.ElapsedSeconds());

  std::printf("\n%zu scenarios, %d failures, %d rollback instants, %.1fs\n",
              rows.size(), failures, rollback_instants,
              total.ElapsedSeconds());
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace activedp

int main(int argc, char** argv) { return activedp::Main(argc, argv); }
