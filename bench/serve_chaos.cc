// Serving chaos gate: drives the full serving-side fault matrix (every
// serve.* fault site × fault kind × seed, see serve/chaos_scenario.h) and
// asserts the ServeGuard contract:
//
//   1. nothing crashes: every injected fault is cleanly rejected (non-OK
//      status, detected corruption) or auto-recovered (circuit breaker back
//      to last-known-good, staged-rollout rollback, absorbed latency spike);
//   2. zero served-digest divergence on the surviving path — after every
//      fault, responses stay bitwise identical to the offline prediction of
//      whichever snapshot should be active;
//   3. registry writes are all-or-nothing: failed or torn manifest saves
//      never leave partial state, and a torn file is detected on reopen;
//   4. the auto-rollback is visible in the RunTrace timeline (the run fails
//      if no serve.registry/serve.rollout rollback instant was recorded).
//
// Writes a JSON accounting report (BENCH_serve_chaos.json) plus the full
// trace (BENCH_serve_chaos.trace.*). Registered as a ctest with LABELS
// chaos; also a standalone binary:
//   ./build/bench/serve_chaos --seeds=2 --steps=12 --trace=48

#include <cstdio>
#include <filesystem>
#include <future>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "serve/chaos_scenario.h"
#include "serve/prediction_service.h"
#include "util/atomic_file.h"
#include "util/deadline.h"
#include "util/fault.h"
#include "util/flags.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace activedp {
namespace {

struct ScenarioRow {
  std::string site;
  std::string kind;
  uint64_t seed;
  int incidents = 0;
  ServeChaosOutcome outcome;
};

/// The incident reason one matrix cell must dump exactly once, or "" when
/// the cell must not dump at all. Only the two auto-recovery drills leave
/// an incident behind; every other cell is a clean rejection.
std::string ExpectedIncidentReason(const std::string& site,
                                   const std::string& kind) {
  if (site == "serve.dispatch" && kind == "error") return "serve.breaker_trip";
  if (site == "rollout.canary" && kind == "error") return "rollout.rollback";
  return "";
}

/// The instant name the dumped timeline must contain for each reason — the
/// acceptance criterion that the trigger is *visible*, not just implied.
std::string TimelineMarker(const std::string& reason) {
  if (reason == "serve.breaker_trip") return "circuit_breaker";
  if (reason == "rollout.rollback") return "rollback";
  if (reason == "serve.shed_burst") return "shed_burst";
  if (reason == "serve.deadline_storm") return "deadline_storm";
  return reason;
}

/// Verifies one scenario's incident output: exactly one well-formed,
/// checksummed dump with `expected_reason` (whose timeline contains the
/// triggering instant), or exactly zero dumps when no reason is expected.
/// Returns the number of gate failures.
int CheckScenarioIncidents(const std::string& incident_dir,
                           const std::string& expected_reason,
                           int* dump_count) {
  const std::vector<std::string> dumps = ListIncidentDumps(incident_dir);
  *dump_count = static_cast<int>(dumps.size());
  if (expected_reason.empty()) {
    if (dumps.empty()) return 0;
    std::fprintf(stderr, "FAIL: %zu unexpected incident dump(s) under %s\n",
                 dumps.size(), incident_dir.c_str());
    return 1;
  }
  if (dumps.size() != 1) {
    std::fprintf(stderr,
                 "FAIL: expected exactly 1 \"%s\" dump under %s, found %zu\n",
                 expected_reason.c_str(), incident_dir.c_str(), dumps.size());
    return 1;
  }
  int failures = 0;
  const std::string& dump = dumps[0];
  const Status verified = VerifyIncidentDump(dump);
  if (!verified.ok()) {
    ++failures;
    std::fprintf(stderr, "FAIL: incident dump %s did not verify: %s\n",
                 dump.c_str(), verified.ToString().c_str());
  }
  const Result<IncidentManifest> manifest = ReadIncidentManifest(dump);
  if (!manifest.ok() || manifest->reason != expected_reason) {
    ++failures;
    std::fprintf(stderr,
                 "FAIL: incident dump %s has reason \"%s\", want \"%s\"\n",
                 dump.c_str(),
                 manifest.ok() ? manifest->reason.c_str() : "<unreadable>",
                 expected_reason.c_str());
  }
  const Result<std::string> timeline =
      ReadFileVerifyingChecksum(dump + "/timeline.jsonl");
  const std::string marker = TimelineMarker(expected_reason);
  if (!timeline.ok() || timeline->find(marker) == std::string::npos) {
    ++failures;
    std::fprintf(stderr,
                 "FAIL: timeline in %s lacks the triggering instant \"%s\"\n",
                 dump.c_str(), marker.c_str());
  }
  return failures;
}

/// Dedicated shed-burst drill: a latency spike on every batch warms the
/// EWMA to ~5ms/request, so a flood of async requests is shed at admission;
/// `shed_burst_threshold` sheds inside the window must fire exactly one
/// "serve.shed_burst" incident.
ScenarioRow RunShedBurstDrill(const ServeChaosFixture& fixture,
                              const std::string& incident_dir, uint64_t seed,
                              int* gate_failures) {
  ScenarioRow row;
  row.site = "drill.shed_burst";
  row.kind = "overload";
  row.seed = seed;
  Timer timer;

  FlightRecorderOptions recorder_options;
  recorder_options.incident_dir = incident_dir;
  FlightRecorder::Global().Enable(recorder_options);
  {
    PredictionServiceOptions options;
    options.max_batch_size = 4;
    options.max_batch_delay_ms = 0.2;
    options.max_queue_delay_ms = 0.05;
    options.shed_burst_threshold = 8;
    options.incident_window_seconds = 30.0;
    PredictionService service(options);
    service.LoadSnapshot(fixture.snapshot_a);

    FaultSpec spec;
    spec.kind = FaultKind::kLatencySpike;
    spec.seed = seed;
    spec.max_fires = -1;
    FaultScope scope("serve.predict", spec);
    // Two slow warm-up batches push the EWMA far above the 0.05ms queue
    // budget; from then on every async request is shed at admission.
    for (int i = 0; i < 2; ++i) {
      (void)service.Predict(fixture.trace[i % fixture.trace.size()]);
    }
    const int64_t before = FlightRecorder::Global().incidents_dumped();
    std::vector<std::future<Result<ServedPrediction>>> futures;
    int shed = 0;
    for (int i = 0; i < 512; ++i) {
      futures.push_back(
          service.PredictAsync(fixture.trace[i % fixture.trace.size()]));
      if (FlightRecorder::Global().incidents_dumped() > before && i >= 16) {
        break;
      }
    }
    for (auto& future : futures) {
      const Result<ServedPrediction> result = future.get();
      if (!result.ok() && result.status().code() == StatusCode::kUnavailable) {
        ++shed;
      }
    }
    row.outcome.fires = shed;
    if (shed < 8) row.outcome.Fail("overload flood shed too few requests");
  }
  FlightRecorder::Global().Disable();

  const int failures = CheckScenarioIncidents(incident_dir, "serve.shed_burst",
                                              &row.incidents);
  *gate_failures += failures;
  if (failures == 0 && row.outcome.passed) row.outcome.evidence = 1;
  row.outcome.elapsed_seconds = timer.ElapsedSeconds();
  return row;
}

/// Dedicated deadline-storm drill: requests admitted with already-expired
/// deadlines; `deadline_storm_threshold` failures inside the window must
/// fire exactly one "serve.deadline_storm" incident.
ScenarioRow RunDeadlineStormDrill(const ServeChaosFixture& fixture,
                                  const std::string& incident_dir,
                                  uint64_t seed, int* gate_failures) {
  ScenarioRow row;
  row.site = "drill.deadline_storm";
  row.kind = "expired";
  row.seed = seed;
  Timer timer;

  FlightRecorderOptions recorder_options;
  recorder_options.incident_dir = incident_dir;
  FlightRecorder::Global().Enable(recorder_options);
  {
    PredictionServiceOptions options;
    options.deadline_storm_threshold = 8;
    options.incident_window_seconds = 30.0;
    PredictionService service(options);
    service.LoadSnapshot(fixture.snapshot_a);
    for (int i = 0; i < 8; ++i) {
      const Result<ServedPrediction> result = service.Predict(
          fixture.trace[i % fixture.trace.size()], Deadline::After(0.0));
      if (!result.ok() &&
          result.status().code() == StatusCode::kDeadlineExceeded) {
        ++row.outcome.fires;
      }
    }
    if (row.outcome.fires < 8) {
      row.outcome.Fail("expired requests were not all deadline-failed");
    }
  }
  FlightRecorder::Global().Disable();

  const int failures = CheckScenarioIncidents(
      incident_dir, "serve.deadline_storm", &row.incidents);
  *gate_failures += failures;
  if (failures == 0 && row.outcome.passed) row.outcome.evidence = 1;
  row.outcome.elapsed_seconds = timer.ElapsedSeconds();
  return row;
}

void WriteReport(const std::string& path, const std::vector<ScenarioRow>& rows,
                 int failures, int rollback_instants, int incident_dumps,
                 double total_seconds) {
  std::string out;
  out += "{\n";
  out += "  \"benchmark\": \"serve_chaos\",\n";
  out += "  \"scenarios\": " + std::to_string(rows.size()) + ",\n";
  out += "  \"failures\": " + std::to_string(failures) + ",\n";
  out += "  \"rollback_instants\": " + std::to_string(rollback_instants) +
         ",\n";
  out += "  \"incident_dumps\": " + std::to_string(incident_dumps) + ",\n";
  out += "  \"breaker_trips\": " +
         std::to_string(
             MetricsRegistry::Global().counter_value("serve.breaker_trips")) +
         ",\n";
  out += "  \"rollout_rollbacks\": " +
         std::to_string(MetricsRegistry::Global().counter_value(
             "serve.rollout.rollbacks")) +
         ",\n";
  out += "  \"registry_rollbacks\": " +
         std::to_string(MetricsRegistry::Global().counter_value(
             "serve.registry.rollbacks")) +
         ",\n";
  out += "  \"total_seconds\": " + std::to_string(total_seconds) + ",\n";
  out += "  \"matrix\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScenarioRow& row = rows[i];
    out += "    {\"site\": \"" + row.site + "\", \"kind\": \"" + row.kind +
           "\", \"seed\": " + std::to_string(row.seed) +
           ", \"passed\": " + (row.outcome.passed ? "true" : "false") +
           ", \"fires\": " + std::to_string(row.outcome.fires) +
           ", \"evidence\": " + std::to_string(row.outcome.evidence) +
           ", \"incidents\": " + std::to_string(row.incidents) +
           ", \"digest_mismatches\": " +
           std::to_string(row.outcome.digest_mismatches) + "}";
    out += i + 1 < rows.size() ? ",\n" : "\n";
  }
  out += "  ]\n";
  out += "}\n";
  const Status written = AtomicWriteFile(path, out);
  if (!written.ok()) {
    std::fprintf(stderr, "report write failed: %s\n",
                 written.ToString().c_str());
  }
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddFlag("dataset", "youtube", "zoo dataset behind the snapshots");
  flags.AddFlag("scale", "0.1", "fraction of paper dataset sizes");
  flags.AddFlag("seeds", "2", "number of seeds swept through the matrix");
  flags.AddFlag("steps", "12", "protocol steps before snapshot A (plus "
                               "half as many more before B)");
  flags.AddFlag("trace", "48", "request trace length per scenario");
  flags.AddFlag("out", "BENCH_serve_chaos.json", "JSON report path");
  flags.AddFlag("trace-dir", "bench-archive",
                "directory the BENCH_serve_chaos.trace.* exports land in");
  flags.AddFlag("incident-dir", "",
                "incident dump root (default <trace-dir>/incidents-serve-"
                "chaos); wiped at startup so counts are per-run");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 2;
  }
  if (flags.help_requested()) return 0;

  const std::string tmpdir =
      (std::filesystem::temp_directory_path() / "activedp-serve-chaos")
          .string();
  std::filesystem::create_directories(tmpdir);

  std::string incident_root = flags.GetString("incident-dir");
  if (incident_root.empty()) {
    incident_root = flags.GetString("trace-dir") + "/incidents-serve-chaos";
  }
  std::filesystem::remove_all(incident_root);

  MetricsRegistry::Global().ResetAll();
  Tracer::Global().Enable();

  std::vector<ScenarioRow> rows;
  int failures = 0;
  int incident_dumps = 0;
  int breaker_dumps = 0;
  int rollback_dumps = 0;
  Timer total;
  const int num_seeds = flags.GetInt("seeds");
  const int steps = flags.GetInt("steps");
  for (int s = 0; s < num_seeds; ++s) {
    const uint64_t seed = 7 + 1000003ULL * s;
    const Result<ServeChaosFixture> fixture = BuildServeChaosFixture(
        tmpdir, flags.GetString("dataset"), flags.GetDouble("scale"), seed,
        steps, std::max(1, steps / 2), flags.GetInt("trace"));
    if (!fixture.ok()) {
      std::fprintf(stderr, "fixture build failed (seed %llu): %s\n",
                   static_cast<unsigned long long>(seed),
                   fixture.status().ToString().c_str());
      return 1;
    }
    for (const ServeChaosSiteInfo& info : ServeChaosSites()) {
      for (const FaultKind kind : ServeChaosKinds()) {
        ScenarioRow row;
        row.site = info.site;
        row.kind = std::string(FaultKindToString(kind));
        row.seed = seed;
        // One incident directory per matrix cell: the flight recorder is
        // armed for every scenario so the "clean cells dump nothing" half
        // of the contract is exercised too.
        const std::string cell_dir = incident_root + "/" + row.site + "-" +
                                     row.kind + "-seed" + std::to_string(s);
        FlightRecorderOptions recorder_options;
        recorder_options.incident_dir = cell_dir;
        FlightRecorder::Global().Enable(recorder_options);
        row.outcome = RunServeChaosScenario(*fixture, info.site, kind, seed);
        FlightRecorder::Global().Disable();
        const std::string expected_reason =
            ExpectedIncidentReason(row.site, row.kind);
        failures +=
            CheckScenarioIncidents(cell_dir, expected_reason, &row.incidents);
        incident_dumps += row.incidents;
        if (row.incidents == 1 && expected_reason == "serve.breaker_trip") {
          ++breaker_dumps;
        }
        if (row.incidents == 1 && expected_reason == "rollout.rollback") {
          ++rollback_dumps;
        }
        std::printf("%-6s %-20s %-14s fires=%-4d evidence=%-3d incidents=%d "
                    "digest_mismatches=%-3d %6.2fs\n",
                    row.outcome.passed ? "ok" : "FAIL", row.site.c_str(),
                    row.kind.c_str(), row.outcome.fires, row.outcome.evidence,
                    row.incidents, row.outcome.digest_mismatches,
                    row.outcome.elapsed_seconds);
        if (!row.outcome.passed) {
          ++failures;
          std::fprintf(stderr, "  seed %llu: %s\n",
                       static_cast<unsigned long long>(seed),
                       row.outcome.failure.c_str());
        }
        rows.push_back(std::move(row));
      }
    }
    if (s == 0) {
      // The incident-trigger drills the fault matrix cannot reach: shed
      // bursts and deadline storms (admission-path triggers).
      for (const auto drill : {&RunShedBurstDrill, &RunDeadlineStormDrill}) {
        ScenarioRow row = (*drill)(
            *fixture, incident_root + "/" + std::to_string(rows.size()) +
                          "-drill",
            seed, &failures);
        incident_dumps += row.incidents;
        std::printf("%-6s %-20s %-14s fires=%-4d evidence=%-3d incidents=%d "
                    "digest_mismatches=%-3d %6.2fs\n",
                    row.outcome.passed ? "ok" : "FAIL", row.site.c_str(),
                    row.kind.c_str(), row.outcome.fires, row.outcome.evidence,
                    row.incidents, row.outcome.digest_mismatches,
                    row.outcome.elapsed_seconds);
        if (!row.outcome.passed) {
          ++failures;
          std::fprintf(stderr, "  drill: %s\n", row.outcome.failure.c_str());
        }
        rows.push_back(std::move(row));
      }
    }
  }
  // Run-level incident gate: the auto-recovery cells must actually have
  // dumped (one per cell — the per-cell checks above enforce exactness).
  if (breaker_dumps == 0) {
    ++failures;
    std::fprintf(stderr, "FAIL: no serve.breaker_trip incident dump\n");
  }
  if (rollback_dumps == 0) {
    ++failures;
    std::fprintf(stderr, "FAIL: no rollout.rollback incident dump\n");
  }

  const RunTrace trace = Tracer::Global().Collect();
  Tracer::Global().Disable();

  // The acceptance check the whole harness exists for: the auto-rollback
  // must be *visible in the timeline*, not just implied by return values.
  int rollback_instants = 0;
  for (const TraceEventRecord& event : trace.events) {
    if ((event.category == "serve.registry" ||
         event.category == "serve.rollout") &&
        event.name == "rollback") {
      ++rollback_instants;
    }
  }
  if (rollback_instants == 0) {
    ++failures;
    std::fprintf(stderr,
                 "FAIL: no rollback instant in the RunTrace timeline\n");
  }

  std::printf("\n%s", trace.Summary().ToString().c_str());
  const Status trace_written = WriteRunTrace(
      trace, flags.GetString("trace-dir"), "BENCH_serve_chaos");
  if (!trace_written.ok()) {
    std::fprintf(stderr, "trace export failed: %s\n",
                 trace_written.ToString().c_str());
  }
  WriteReport(flags.GetString("out"), rows, failures, rollback_instants,
              incident_dumps, total.ElapsedSeconds());

  std::printf("\n%zu scenarios, %d failures, %d rollback instants, "
              "%d incident dumps, %.1fs\n",
              rows.size(), failures, rollback_instants, incident_dumps,
              total.ElapsedSeconds());
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace activedp

int main(int argc, char** argv) { return activedp::Main(argc, argv); }
