// Table 3: ablation study of ActiveDP's two techniques. Four variants are
// compared by average downstream test accuracy over the run:
//   Baseline  — all user-returned LFs train the label model; DP-only labels
//   LabelPick — LF selection only
//   ConFusion — confidence-based aggregation only
//   ActiveDP  — both
// Expected shape (paper): ConFusion > LabelPick > Baseline, ActiveDP best.

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/spec_builder.h"
#include "data/dataset_zoo.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace activedp {
namespace {

struct Variant {
  std::string name;
  bool use_label_pick;
  bool use_confusion;
};

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddFlag("datasets", "all", "comma-separated zoo names or 'all'");
  ExperimentSpecBuilder::RegisterCommonFlags(flags);
  flags.AddFlag("label-model", "metal", "label model: metal | metal-mc | ds | mv | generative");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) return 0;

  ExperimentSpec spec =
      ExperimentSpecBuilder::FromFlags(flags)
          .Framework(FrameworkType::kActiveDp)
          .LabelModel(ParseLabelModelType(flags.GetString("label-model")))
          .Build();

  std::vector<std::string> datasets;
  if (flags.GetString("datasets") == "all") {
    datasets = ZooDatasetNames();
  } else {
    datasets = Split(flags.GetString("datasets"), ',');
  }

  const std::vector<Variant> variants = {
      {"Baseline", false, false},
      {"LabelPick", true, false},
      {"ConFusion", false, true},
      {"ActiveDP", true, true},
  };

  std::printf(
      "Table 3 — ablation (average test accuracy; iterations=%d, seeds=%d, "
      "scale=%.2f)\n\n",
      spec.protocol.iterations, spec.num_seeds, spec.data_scale);

  std::vector<std::string> header = {"Method"};
  for (const auto& d : datasets) header.push_back(d);
  header.push_back("mean");
  TablePrinter printer(header);

  Timer timer;
  for (const auto& variant : variants) {
    std::vector<double> values;
    double total = 0.0;
    for (const auto& dataset : datasets) {
      spec.dataset = dataset;
      spec.adp.use_label_pick = variant.use_label_pick;
      spec.adp.use_confusion = variant.use_confusion;
      Result<RunResult> run = RunExperiment(spec);
      const double value = run.ok() ? run->average_test_accuracy : 0.0;
      values.push_back(value);
      total += value;
    }
    values.push_back(total / datasets.size());
    printer.AddRow(variant.name, values, 4);
  }
  std::printf("%s\n", printer.ToString().c_str());
  std::printf("total time: %.1fs\n", timer.ElapsedSeconds());
  return 0;
}

}  // namespace
}  // namespace activedp

int main(int argc, char** argv) { return activedp::Main(argc, argv); }
