// Table 2: the eight evaluation datasets — task, split sizes and class
// balance. Because this reproduction generates synthetic stand-ins (see
// DESIGN.md §1), the table also prints calibration diagnostics that the
// difficulty profiles are tuned against: the fully-supervised ceiling
// (logistic regression trained on all training labels) and the accuracy of
// the same model trained on 300 random labels (the paper's maximum
// labelling budget).

#include <cstdio>
#include <string>
#include <vector>

#include "core/framework.h"
#include "data/dataset_zoo.h"
#include "ml/linear_model.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace activedp {
namespace {

double SupervisedAccuracy(const FrameworkContext& context,
                          const std::vector<int>& train_labels, int budget,
                          uint64_t seed) {
  Rng rng(seed);
  std::vector<int> rows;
  const int n = static_cast<int>(context.train_features.size());
  if (budget >= n) {
    rows.resize(n);
    for (int i = 0; i < n; ++i) rows[i] = i;
  } else {
    rows = rng.SampleWithoutReplacement(n, budget);
  }
  std::vector<SparseVector> x;
  std::vector<int> y;
  for (int i : rows) {
    x.push_back(context.train_features[i]);
    y.push_back(train_labels[i]);
  }
  LogisticRegressionOptions options;
  options.seed = seed;
  Result<LogisticRegression> model = LogisticRegression::FitHard(
      x, y, context.num_classes, context.feature_dim, options);
  if (!model.ok()) return 0.0;
  int correct = 0;
  for (size_t i = 0; i < context.test_features.size(); ++i) {
    if (model->Predict(context.test_features[i]) == context.test_labels[i]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / context.test_features.size();
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddFlag("scale", "0.25", "fraction of paper dataset sizes");
  flags.AddFlag("seed", "42", "generation seed");
  flags.AddFlag("full", "false", "paper-scale sizes (scale 1.0)");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) return 0;
  const double scale = flags.GetBool("full") ? 1.0 : flags.GetDouble("scale");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  std::printf("Table 2 — datasets used in evaluation (scale=%.2f)\n\n", scale);
  TablePrinter printer({"Name", "Task", "#Train", "#Valid", "#Test",
                        "P(y=1)", "LR(all)", "LR(300)"});
  for (const auto& entry : DatasetZoo()) {
    Result<DataSplit> split = MakeZooDataset(entry.name, scale, seed);
    if (!split.ok()) {
      std::fprintf(stderr, "%s: %s\n", entry.name.c_str(),
                   split.status().ToString().c_str());
      continue;
    }
    FrameworkContext context = FrameworkContext::Build(*split);
    const std::vector<int> train_labels = split->train.Labels();
    const double ceiling =
        SupervisedAccuracy(context, train_labels, split->train.size(), seed);
    const double at300 = SupervisedAccuracy(context, train_labels, 300, seed);
    printer.AddRow({entry.display_name, entry.task,
                    std::to_string(split->train.size()),
                    std::to_string(split->valid.size()),
                    std::to_string(split->test.size()),
                    FormatDouble(split->train.ClassBalance()[1], 3),
                    FormatDouble(ceiling, 4), FormatDouble(at300, 4)});
  }
  std::printf("%s\n", printer.ToString().c_str());
  std::printf(
      "Paper sizes (scale 1.0): Youtube 1566/195/195, IMDB/Yelp/Amazon "
      "20000/2500/2500,\nBios-PT 19672/2458/2458, Bios-JP 25808/3225/3225, "
      "Occupancy 14317/1789/1789,\nCensus 25541/3192/3192.\n");
  return 0;
}

}  // namespace
}  // namespace activedp

int main(int argc, char** argv) { return activedp::Main(argc, argv); }
