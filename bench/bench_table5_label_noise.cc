// Table 5: robustness of ActiveDP to simulated label noise. A fraction of
// query instances is answered "for the flipped label" (§4.3.3): the returned
// LFs still clear the global accuracy threshold but misfire on their query,
// poisoning the pseudo-labelled set that trains the AL model. Expected shape
// (paper): graceful degradation — roughly 1% / 2% / 3% average accuracy loss
// at 5% / 10% / 15% noise.

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/spec_builder.h"
#include "data/dataset_zoo.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace activedp {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddFlag("datasets", "all", "comma-separated zoo names or 'all'");
  ExperimentSpecBuilder::RegisterCommonFlags(flags);
  flags.AddFlag("noise-levels", "0,0.05,0.10,0.15",
                "comma-separated label-noise rates");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) return 0;

  ExperimentSpec spec = ExperimentSpecBuilder::FromFlags(flags)
                            .Framework(FrameworkType::kActiveDp)
                            .Build();

  std::vector<std::string> datasets;
  if (flags.GetString("datasets") == "all") {
    datasets = ZooDatasetNames();
  } else {
    datasets = Split(flags.GetString("datasets"), ',');
  }
  std::vector<double> noise_levels;
  for (const auto& level : Split(flags.GetString("noise-levels"), ',')) {
    noise_levels.push_back(std::atof(level.c_str()));
  }

  std::printf(
      "Table 5 — ActiveDP under simulated label noise (average test "
      "accuracy; iterations=%d, seeds=%d, scale=%.2f)\n\n",
      spec.protocol.iterations, spec.num_seeds, spec.data_scale);

  std::vector<std::string> header = {"Label Noise"};
  for (const auto& d : datasets) header.push_back(d);
  header.push_back("mean");
  TablePrinter printer(header);

  Timer timer;
  double clean_mean = 0.0;
  for (double noise : noise_levels) {
    std::vector<double> values;
    double total = 0.0;
    for (const auto& dataset : datasets) {
      spec.dataset = dataset;
      spec.adp.user.label_noise = noise;
      Result<RunResult> run = RunExperiment(spec);
      const double value = run.ok() ? run->average_test_accuracy : 0.0;
      values.push_back(value);
      total += value;
    }
    const double mean = total / datasets.size();
    values.push_back(mean);
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f%%", 100.0 * noise);
    printer.AddRow(label, values, 4);
    if (noise == 0.0) clean_mean = mean;
  }
  std::printf("%s\n", printer.ToString().c_str());
  if (clean_mean > 0.0) {
    std::printf("(degradation is reported relative to the 0%% row: %.4f)\n",
                clean_mean);
  }
  std::printf("total time: %.1fs\n", timer.ElapsedSeconds());
  return 0;
}

}  // namespace
}  // namespace activedp

int main(int argc, char** argv) { return activedp::Main(argc, argv); }
