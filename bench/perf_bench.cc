// Pipeline performance benchmark for the parallelized hot paths. Times each
// stage — featurization (CSR), LF application, label-model fits, the spin
// Gram matrix, graphical lasso — plus the end-to-end chain at several
// compute-pool thread counts and SIMD kernel levels, and writes the timings
// to a JSON report (BENCH_pipeline.json).
//
// Determinism is asserted unconditionally: every stage's numeric output is
// digested (FNV-1a over raw double bit patterns) and any digest that differs
// across (simd level x thread count x repeat) passes fails the run — the
// kernels' canonical 4-lane association (math/kernels.h) makes scalar, SSE2
// and AVX2 bitwise interchangeable. The speedup itself is reported in the
// JSON but only enforced with --require-speedup=true, because the attainable
// ratio depends on the machine (a 1-core container cannot speed up at all).
//
//   ./build/bench/perf_bench --examples=4000 --lfs=24 --threads=1,2,8
//       --simd=auto,scalar --repeats=3 --out=BENCH_pipeline.json
//
// Registered as a ctest with LABELS perf at a small smoke size.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "data/synthetic_text.h"
#include "graphical/graphical_lasso.h"
#include "lf/label_function.h"
#include "lf/lf_applier.h"
#include "labelmodel/metal_completion.h"
#include "labelmodel/metal_model.h"
#include "math/csr_matrix.h"
#include "math/kernels.h"
#include "math/matrix.h"
#include "ml/featurizer.h"
#include "ml/metrics.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

namespace activedp {
namespace {

class BitHasher {
 public:
  void Add(double value) {
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    AddBits(bits);
  }
  void Add(int value) { AddBits(static_cast<uint64_t>(value)); }
  void Add(const std::vector<std::vector<double>>& rows) {
    for (const auto& row : rows) {
      for (double v : row) Add(v);
    }
  }
  void Add(const Matrix& m) {
    for (int r = 0; r < m.rows(); ++r) {
      for (int c = 0; c < m.cols(); ++c) Add(m(r, c));
    }
  }
  void Add(const SparseVector& v) {
    for (int k = 0; k < v.nnz(); ++k) {
      Add(v.indices[k]);
      Add(v.values[k]);
    }
  }
  uint64_t digest() const { return hash_; }

 private:
  void AddBits(uint64_t bits) {
    for (int byte = 0; byte < 8; ++byte) {
      hash_ ^= (bits >> (8 * byte)) & 0xffu;
      hash_ *= 0x100000001b3ULL;
    }
  }
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

struct StageResult {
  std::string name;
  double seconds = 0.0;
  uint64_t digest = 0;
};

struct RunResultRow {
  int threads = 0;
  std::string simd;
  std::vector<StageResult> stages;
  double end_to_end_seconds = 0.0;
};

// One full pipeline pass at the currently configured compute-pool width and
// SIMD level. The dataset is generated outside (untimed, identical across
// passes).
RunResultRow RunOnce(const Dataset& data, int num_lfs, int threads) {
  RunResultRow row;
  row.threads = threads;
  row.simd = kernels::SimdLevelName(kernels::ActiveSimdLevel());
  Timer total;

  {
    Timer timer;
    BitHasher hasher;
    const TextFeaturizer featurizer(data);
    // CSR data plane: the whole corpus packs into one matrix. Row r holds
    // exactly Transform(example r)'s entries, so the digest matches the
    // per-SparseVector path bit for bit.
    const CsrMatrix features = FeaturizeAllCsr(featurizer, data);
    for (int r = 0; r < features.rows(); ++r) {
      const int32_t* idx = features.RowIndices(r);
      const double* val = features.RowValues(r);
      const int count = features.RowNnz(r);
      for (int k = 0; k < count; ++k) {
        hasher.Add(static_cast<int>(idx[k]));
        hasher.Add(val[k]);
      }
    }
    row.stages.push_back({"featurize", timer.ElapsedSeconds(),
                          hasher.digest()});
  }

  std::vector<LfPtr> lfs;
  const int m = std::min(num_lfs, data.vocabulary().size());
  for (int id = 0; id < m; ++id) {
    lfs.push_back(std::make_shared<KeywordLf>(
        id, data.vocabulary().GetWord(id), id % data.meta().num_classes));
  }
  LabelMatrix matrix(0);
  {
    Timer timer;
    BitHasher hasher;
    matrix = ApplyLfs(lfs, data);
    for (int j = 0; j < matrix.num_cols(); ++j) {
      for (int8_t v : matrix.column(j)) hasher.Add(static_cast<int>(v));
    }
    row.stages.push_back({"lf_apply", timer.ElapsedSeconds(),
                          hasher.digest()});
  }

  {
    Timer timer;
    BitHasher hasher;
    MetalModel metal;
    CHECK(metal.Fit(matrix, data.meta().num_classes).ok());
    auto metal_proba = metal.PredictProbaAll(matrix);
    CHECK(metal_proba.ok());
    hasher.Add(*metal_proba);
    MetalCompletionModel completion;
    CHECK(completion.Fit(matrix, data.meta().num_classes).ok());
    auto completion_proba = completion.PredictProbaAll(matrix);
    CHECK(completion_proba.ok());
    hasher.Add(*completion_proba);
    row.stages.push_back({"label_model", timer.ElapsedSeconds(),
                          hasher.digest()});
  }

  Matrix covariance;
  {
    Timer timer;
    BitHasher hasher;
    const int n = matrix.num_rows();
    // Spin Gram matrix straight off the CSR view: S^T S touches only the
    // stored (non-abstain) entries instead of densifying n x m first. The
    // products are exact +-1 integers, so the result matches the dense
    // transpose-multiply bitwise.
    matrix.EnsureRows();
    covariance = matrix.SpinCsr().SelfInnerProduct().Scale(1.0 / n);
    for (int j = 0; j < covariance.rows(); ++j) covariance(j, j) += 0.1;
    hasher.Add(covariance);
    row.stages.push_back({"matmul", timer.ElapsedSeconds(), hasher.digest()});
  }

  {
    Timer timer;
    BitHasher hasher;
    GraphicalLassoOptions options;
    options.max_iterations = 30;
    auto glasso = GraphicalLasso(covariance, options);
    CHECK(glasso.ok());
    hasher.Add(glasso->precision);
    row.stages.push_back({"glasso", timer.ElapsedSeconds(), hasher.digest()});
  }

  row.end_to_end_seconds = total.ElapsedSeconds();
  return row;
}

std::string HexDigest(uint64_t digest) {
  char buffer[19];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(digest));
  return buffer;
}

void WriteJson(const std::string& path, const Dataset& data, int num_lfs,
               int repeats, const std::vector<RunResultRow>& rows,
               double speedup, bool deterministic) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"benchmark\": \"pipeline\",\n";
  out << "  \"examples\": " << data.size() << ",\n";
  out << "  \"lfs\": " << num_lfs << ",\n";
  out << "  \"repeats\": " << repeats << ",\n";
  out << "  \"hardware_threads\": "
      << std::thread::hardware_concurrency() << ",\n";
  out << "  \"deterministic_across_threads\": "
      << (deterministic ? "true" : "false") << ",\n";
  out << "  \"speedup_max_vs_serial\": " << speedup << ",\n";
  out << "  \"runs\": [\n";
  for (size_t r = 0; r < rows.size(); ++r) {
    const RunResultRow& row = rows[r];
    out << "    {\"threads\": " << row.threads
        << ", \"simd\": \"" << row.simd << "\""
        << ", \"end_to_end_seconds\": " << row.end_to_end_seconds
        << ", \"stages\": {";
    for (size_t s = 0; s < row.stages.size(); ++s) {
      const StageResult& stage = row.stages[s];
      out << "\"" << stage.name << "\": {\"seconds\": " << stage.seconds
          << ", \"digest\": \"" << HexDigest(stage.digest) << "\"}";
      if (s + 1 < row.stages.size()) out << ", ";
    }
    out << "}}";
    if (r + 1 < rows.size()) out << ",";
    out << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddFlag("examples", "4000", "synthetic corpus size");
  flags.AddFlag("lfs", "24", "number of keyword label functions");
  flags.AddFlag("threads", "", "comma-separated compute-pool widths to time "
                               "(default: 1,2,<hardware>)");
  flags.AddFlag("simd", "", "comma-separated kernel levels to time (auto, "
                            "scalar, sse2, avx2; default: auto,scalar when "
                            "SIMD is compiled in, else scalar)");
  flags.AddFlag("repeats", "1", "timing passes per (simd, threads) cell; "
                                "best-of timing, every pass digest-checked");
  flags.AddFlag("out", "BENCH_pipeline.json", "JSON report path");
  flags.AddFlag("trace-dir", "bench-archive",
                "directory the BENCH_pipeline.trace.* exports land in");
  flags.AddFlag("require-speedup", "false",
                "fail unless the widest run beats serial by --min-speedup "
                "(leave off on small machines)");
  flags.AddFlag("min-speedup", "3.0", "threshold for --require-speedup");
  flags.AddFlag("seed", "7", "corpus generation seed");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 2;
  }

  std::vector<int> thread_counts;
  if (flags.GetString("threads").empty()) {
    const int hw = std::max(1u, std::thread::hardware_concurrency());
    thread_counts = {1, 2};
    if (hw > 2) thread_counts.push_back(hw);
  } else {
    for (const std::string& part : Split(flags.GetString("threads"), ',')) {
      if (!part.empty()) thread_counts.push_back(std::stoi(part));
    }
  }
  CHECK(!thread_counts.empty());

  // SIMD levels to sweep, deduplicated after clamping to what this binary +
  // CPU supports (e.g. "avx2" collapses onto "scalar" in a -DACTIVEDP_SIMD=OFF
  // build, and the sweep then runs it once).
  std::vector<kernels::SimdLevel> simd_levels;
  {
    std::vector<std::string> names;
    if (flags.GetString("simd").empty()) {
      names.push_back("auto");
      if (kernels::SimdCompiledIn()) names.push_back("scalar");
    } else {
      for (const std::string& part : Split(flags.GetString("simd"), ',')) {
        if (!part.empty()) names.push_back(part);
      }
    }
    for (const std::string& name : names) {
      kernels::SimdLevel level = kernels::ParseSimdLevel(name);
      if (level > kernels::MaxSupportedSimdLevel()) {
        level = kernels::MaxSupportedSimdLevel();
      }
      if (std::find(simd_levels.begin(), simd_levels.end(), level) ==
          simd_levels.end()) {
        simd_levels.push_back(level);
      }
    }
  }
  CHECK(!simd_levels.empty());
  const int repeats = std::max(1, flags.GetInt("repeats"));

  SyntheticTextConfig config;
  config.num_examples = flags.GetInt("examples");
  config.num_classes = 2;
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  const Dataset data = GenerateSyntheticText(config, rng);
  const int num_lfs = flags.GetInt("lfs");

  // Trace the benchmark itself: each thread-count pass lands on its own
  // track, and the per-stage summary below cross-checks the Timer numbers.
  MetricsRegistry::Global().ResetAll();
  Tracer::Global().Enable();

  // Sweep simd level x thread count; each cell runs `repeats` passes. The
  // fastest pass supplies the reported timings; *every* pass's digests are
  // checked against the first row of the whole sweep (below), so a
  // non-deterministic repeat fails even when its timing is discarded.
  std::vector<RunResultRow> rows;
  bool repeats_deterministic = true;
  int pass_index = 0;
  const kernels::SimdLevel entry_level = kernels::ActiveSimdLevel();
  for (const kernels::SimdLevel level : simd_levels) {
    kernels::SetSimdLevel(level);
    for (const int threads : thread_counts) {
      SetComputePoolThreads(threads);
      TraceTrackScope track(pass_index++);
      RunResultRow best;
      for (int rep = 0; rep < repeats; ++rep) {
        RunResultRow row = RunOnce(data, num_lfs, threads);
        if (rep == 0) {
          best = std::move(row);
          continue;
        }
        for (size_t s = 0; s < row.stages.size(); ++s) {
          if (row.stages[s].digest != best.stages[s].digest) {
            repeats_deterministic = false;
            std::fprintf(stderr,
                         "FAIL: stage %s digest differs across repeats at "
                         "simd=%s threads=%d\n",
                         row.stages[s].name.c_str(), row.simd.c_str(),
                         row.threads);
          }
          best.stages[s].seconds =
              std::min(best.stages[s].seconds, row.stages[s].seconds);
        }
        best.end_to_end_seconds =
            std::min(best.end_to_end_seconds, row.end_to_end_seconds);
      }
      rows.push_back(std::move(best));
      const RunResultRow& row = rows.back();
      LOG(Info) << "simd=" << row.simd << " threads=" << row.threads
                << " end_to_end=" << row.end_to_end_seconds << "s";
    }
  }
  SetComputePoolThreads(1);
  kernels::SetSimdLevel(entry_level);

  const RunTrace trace = Tracer::Global().Collect();
  Tracer::Global().Disable();
  std::printf("%s", trace.Summary().ToString().c_str());
  const Status trace_written =
      WriteRunTrace(trace, flags.GetString("trace-dir"), "BENCH_pipeline");
  if (!trace_written.ok()) {
    std::fprintf(stderr, "trace export failed: %s\n",
                 trace_written.ToString().c_str());
  }

  // Determinism gate: every stage digest in every (simd, threads) cell must
  // match the first cell's — the kernels' canonical association makes SIMD
  // level as digest-neutral as thread count.
  bool deterministic = repeats_deterministic;
  for (const RunResultRow& row : rows) {
    for (size_t s = 0; s < row.stages.size(); ++s) {
      if (row.stages[s].digest != rows[0].stages[s].digest) {
        deterministic = false;
        std::fprintf(stderr,
                     "FAIL: stage %s digest differs at simd=%s threads=%d "
                     "(%s vs reference %s at simd=%s threads=%d)\n",
                     row.stages[s].name.c_str(), row.simd.c_str(),
                     row.threads, HexDigest(row.stages[s].digest).c_str(),
                     HexDigest(rows[0].stages[s].digest).c_str(),
                     rows[0].simd.c_str(), rows[0].threads);
      }
    }
  }

  // Speedup over the thread sweep at the first SIMD level (rows are grouped
  // by level, thread counts in flag order within each group).
  double speedup = 1.0;
  const size_t last_of_first_group = thread_counts.size() - 1;
  if (last_of_first_group > 0 &&
      rows[last_of_first_group].end_to_end_seconds > 0.0) {
    speedup = rows[0].end_to_end_seconds /
              rows[last_of_first_group].end_to_end_seconds;
  }

  WriteJson(flags.GetString("out"), data, num_lfs, repeats, rows, speedup,
            deterministic);
  std::printf(
      "wrote %s (speedup %0.2fx at %d threads, simd=%s, deterministic: %s)\n",
      flags.GetString("out").c_str(), speedup,
      rows[last_of_first_group].threads, rows[0].simd.c_str(),
      deterministic ? "yes" : "no");

  if (!deterministic) return 1;
  if (flags.GetBool("require-speedup") &&
      speedup < flags.GetDouble("min-speedup")) {
    std::fprintf(stderr, "FAIL: speedup %0.2fx below required %0.2fx\n",
                 speedup, flags.GetDouble("min-speedup"));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace activedp

int main(int argc, char** argv) { return activedp::Main(argc, argv); }
