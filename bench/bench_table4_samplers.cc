// Table 4: sensitivity of ActiveDP to the sample-selection strategy.
// Runs ActiveDP with Passive, US, LAL, SEU and the ADP sampler on every
// dataset and reports average downstream test accuracy. Expected shape
// (paper): ADP best on most datasets.

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/spec_builder.h"
#include "data/dataset_zoo.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace activedp {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddFlag("datasets", "all", "comma-separated zoo names or 'all'");
  ExperimentSpecBuilder::RegisterCommonFlags(flags);
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) return 0;

  ExperimentSpec spec = ExperimentSpecBuilder::FromFlags(flags)
                            .Framework(FrameworkType::kActiveDp)
                            .Build();

  std::vector<std::string> datasets;
  if (flags.GetString("datasets") == "all") {
    datasets = ZooDatasetNames();
  } else {
    datasets = Split(flags.GetString("datasets"), ',');
  }

  const std::vector<std::pair<std::string, SamplerType>> samplers = {
      {"Passive", SamplerType::kPassive}, {"US", SamplerType::kUncertainty},
      {"LAL", SamplerType::kLal},         {"SEU", SamplerType::kSeu},
      {"ADP", SamplerType::kAdp},
  };

  std::printf(
      "Table 4 — ActiveDP with different sample selectors (average test "
      "accuracy; iterations=%d, seeds=%d, scale=%.2f)\n\n",
      spec.protocol.iterations, spec.num_seeds, spec.data_scale);

  std::vector<std::string> header = {"Sampler"};
  for (const auto& d : datasets) header.push_back(d);
  header.push_back("mean");
  TablePrinter printer(header);

  Timer timer;
  for (const auto& [name, type] : samplers) {
    std::vector<double> values;
    double total = 0.0;
    for (const auto& dataset : datasets) {
      spec.dataset = dataset;
      spec.adp.sampler_type = type;
      Result<RunResult> run = RunExperiment(spec);
      const double value = run.ok() ? run->average_test_accuracy : 0.0;
      values.push_back(value);
      total += value;
    }
    values.push_back(total / datasets.size());
    printer.AddRow(name, values, 4);
  }
  std::printf("%s\n", printer.ToString().c_str());
  std::printf("total time: %.1fs\n", timer.ElapsedSeconds());
  return 0;
}

}  // namespace
}  // namespace activedp

int main(int argc, char** argv) { return activedp::Main(argc, argv); }
