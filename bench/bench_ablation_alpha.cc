// Design-choice ablation (§3.3): sensitivity of ActiveDP to the ADP
// trade-off factor α in Eq. 2. The paper fixes α = 0.5 for textual datasets
// and α = 0.99 for tabular ones; this sweep shows the behaviour across the
// whole range (α = 0 is label-model-uncertainty-only sampling, α = 1 is
// AL-model-uncertainty-only).

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/spec_builder.h"
#include "data/dataset_zoo.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace activedp {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddFlag("datasets", "youtube,yelp,occupancy,census",
                "comma-separated zoo names or 'all'");
  flags.AddFlag("alphas", "0.0,0.25,0.5,0.75,0.99,1.0",
                "comma-separated ADP trade-off factors");
  ExperimentSpecBuilder::RegisterCommonFlags(flags);
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) return 0;

  ExperimentSpec spec = ExperimentSpecBuilder::FromFlags(flags)
                            .Framework(FrameworkType::kActiveDp)
                            .Build();

  std::vector<std::string> datasets;
  if (flags.GetString("datasets") == "all") {
    datasets = ZooDatasetNames();
  } else {
    datasets = Split(flags.GetString("datasets"), ',');
  }
  std::vector<double> alphas;
  for (const auto& a : Split(flags.GetString("alphas"), ',')) {
    alphas.push_back(std::atof(a.c_str()));
  }

  std::printf(
      "ADP trade-off factor sweep (average test accuracy; iterations=%d, "
      "seeds=%d, scale=%.2f)\n\n",
      spec.protocol.iterations, spec.num_seeds, spec.data_scale);

  std::vector<std::string> header = {"alpha"};
  for (const auto& d : datasets) header.push_back(d);
  TablePrinter printer(header);

  Timer timer;
  for (double alpha : alphas) {
    std::vector<double> values;
    for (const auto& dataset : datasets) {
      spec.dataset = dataset;
      spec.adp.adp_alpha = alpha;
      Result<RunResult> run = RunExperiment(spec);
      values.push_back(run.ok() ? run->average_test_accuracy : 0.0);
    }
    printer.AddRow(FormatDouble(alpha, 2), values, 4);
  }
  std::printf("%s\n", printer.ToString().c_str());
  std::printf(
      "(paper defaults: alpha = 0.5 on text, 0.99 on tabular — §3.3)\n");
  std::printf("total time: %.1fs\n", timer.ElapsedSeconds());
  return 0;
}

}  // namespace
}  // namespace activedp

int main(int argc, char** argv) { return activedp::Main(argc, argv); }
