// Figure 3: end-to-end performance comparison of ActiveDP vs Nemo, IWS,
// Revising LF and Uncertainty Sampling on the eight evaluation datasets.
// Prints each dataset's performance curve (downstream test accuracy vs
// number of queries) and the paper's summary metric (average test accuracy
// over the run) per framework, plus the cross-dataset improvement of
// ActiveDP over each baseline.
//
// Defaults are scaled down to finish quickly on one core; pass --full for
// paper-scale settings (Table 2 sizes, 300 iterations, 5 seeds).

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/spec_builder.h"
#include "data/dataset_zoo.h"
#include "ml/metrics.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace activedp {
namespace {

const std::vector<FrameworkType> kAllFrameworks = {
    FrameworkType::kActiveDp, FrameworkType::kNemo, FrameworkType::kIws,
    FrameworkType::kRlf, FrameworkType::kUs};

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddFlag("datasets", "all", "comma-separated zoo names or 'all'");
  flags.AddFlag("frameworks", "all",
                "comma-separated (activedp,nemo,iws,rlf,us) or 'all'");
  ExperimentSpecBuilder::RegisterCommonFlags(flags);
  flags.AddFlag("csv", "", "optional path for the raw curves as CSV");
  flags.AddFlag("checkpoint-dir", "",
                "directory for per-run crash-safe checkpoints; a killed "
                "run rerun with the same flags resumes from the last eval");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) return 0;

  ExperimentSpec spec = ExperimentSpecBuilder::FromFlags(flags)
                            .CheckpointDir(flags.GetString("checkpoint-dir"))
                            .Build();
  if (!spec.policy.checkpoint_path.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(spec.policy.checkpoint_path, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create checkpoint dir %s: %s\n",
                   spec.policy.checkpoint_path.c_str(), ec.message().c_str());
      return 1;
    }
  }

  std::vector<std::string> datasets;
  if (flags.GetString("datasets") == "all") {
    datasets = ZooDatasetNames();
  } else {
    datasets = Split(flags.GetString("datasets"), ',');
  }
  std::vector<FrameworkType> frameworks;
  if (flags.GetString("frameworks") == "all") {
    frameworks = kAllFrameworks;
  } else {
    for (const auto& name : Split(flags.GetString("frameworks"), ',')) {
      const Result<FrameworkType> framework = ParseFrameworkType(name);
      if (!framework.ok()) {
        std::fprintf(stderr, "--frameworks: %s\n",
                     framework.status().ToString().c_str());
        return 1;
      }
      frameworks.push_back(*framework);
    }
  }

  std::printf(
      "Figure 3 — end-to-end comparison (iterations=%d, seeds=%d, "
      "scale=%.2f)\n\n",
      spec.protocol.iterations, spec.num_seeds, spec.data_scale);

  CsvWriter csv({"dataset", "framework", "budget", "test_accuracy",
                 "label_accuracy", "label_coverage"});
  // summary[framework][dataset] = average test accuracy.
  std::map<std::string, std::map<std::string, double>> summary;
  Timer timer;

  for (const auto& dataset : datasets) {
    std::printf("== %s ==\n", dataset.c_str());
    std::vector<std::string> header = {"framework"};
    bool header_done = false;
    std::vector<int> budgets;
    std::vector<std::pair<std::string, std::vector<double>>> curves;
    const Result<ZooEntry> entry = FindZooEntry(dataset);
    const bool tabular = entry.ok() &&
                         entry->type == TaskType::kTabularClassification;
    for (FrameworkType framework : frameworks) {
      // The paper compares Nemo on the six textual datasets only (§4.1.2).
      if (framework == FrameworkType::kNemo && tabular) continue;
      spec.dataset = dataset;
      spec.framework = framework;
      Result<RunResult> run = RunExperiment(spec);
      if (!run.ok()) {
        std::fprintf(stderr, "  %s: %s\n",
                     FrameworkDisplayName(framework).c_str(),
                     run.status().ToString().c_str());
        continue;
      }
      const std::string name = FrameworkDisplayName(framework);
      summary[name][dataset] = run->average_test_accuracy;
      if (!header_done || run->budgets.size() > budgets.size()) {
        budgets = run->budgets;
        header_done = true;
      }
      curves.emplace_back(name, run->test_accuracy);
      for (size_t i = 0; i < run->budgets.size(); ++i) {
        csv.AddRow({dataset, name, std::to_string(run->budgets[i]),
                    FormatDouble(run->test_accuracy[i], 4),
                    FormatDouble(run->label_accuracy[i], 4),
                    FormatDouble(run->label_coverage[i], 4)});
      }
    }
    for (int b : budgets) header.push_back(std::to_string(b));
    header.push_back("avg");
    TablePrinter printer(header);
    for (auto& [name, curve] : curves) {
      std::vector<double> values = curve;
      // A framework that exhausted its queries (e.g. IWS running out of
      // candidate LFs) has a shorter curve; freeze its last value.
      while (values.size() < budgets.size() && !values.empty()) {
        values.push_back(values.back());
      }
      values.push_back(CurveAverage(curve));
      printer.AddRow(name, values, 4);
    }
    std::printf("%s\n", printer.ToString().c_str());
  }

  // Cross-dataset summary (paper: ActiveDP beats Nemo by 4.4%, IWS by
  // 13.5%, RLF by 2.6%, US by 6.5% on average).
  std::printf("== Average test accuracy over the run (all datasets) ==\n");
  {
    std::vector<std::string> header = {"framework"};
    for (const auto& d : datasets) header.push_back(d);
    header.push_back("mean");
    TablePrinter printer(header);
    for (FrameworkType framework : frameworks) {
      const std::string name = FrameworkDisplayName(framework);
      if (summary.find(name) == summary.end()) continue;
      std::vector<std::string> row = {name};
      double total = 0.0;
      int count = 0;
      for (const auto& d : datasets) {
        auto cell = summary[name].find(d);
        if (cell == summary[name].end()) {
          row.push_back("-");
          continue;
        }
        row.push_back(FormatDouble(cell->second, 4));
        total += cell->second;
        ++count;
      }
      row.push_back(count > 0 ? FormatDouble(total / count, 4) : "-");
      printer.AddRow(std::move(row));
    }
    std::printf("%s\n", printer.ToString().c_str());
    // Paper-style deltas: mean over the datasets BOTH frameworks ran on
    // (Nemo is text-only, so its delta averages the six textual datasets).
    const auto adp_cells = summary.find("ActiveDP");
    if (adp_cells != summary.end()) {
      for (const auto& [name, cells] : summary) {
        if (name == "ActiveDP") continue;
        double delta = 0.0;
        int count = 0;
        for (const auto& [dataset, value] : cells) {
          auto adp = adp_cells->second.find(dataset);
          if (adp == adp_cells->second.end()) continue;
          delta += adp->second - value;
          ++count;
        }
        if (count > 0) {
          std::printf("ActiveDP vs %-10s: %+0.1f%% (over %d datasets)\n",
                      name.c_str(), 100.0 * delta / count, count);
        }
      }
    }
  }

  const std::string csv_path = flags.GetString("csv");
  if (!csv_path.empty()) {
    const Status written = csv.WriteToFile(csv_path);
    if (!written.ok()) {
      std::fprintf(stderr, "csv: %s\n", written.ToString().c_str());
    } else {
      std::printf("curves written to %s\n", csv_path.c_str());
    }
  }
  std::printf("\ntotal time: %.1fs\n", timer.ElapsedSeconds());
  return 0;
}

}  // namespace
}  // namespace activedp

int main(int argc, char** argv) { return activedp::Main(argc, argv); }
