// LearnGuard chaos gate: drives the continuous-learning fault matrix (every
// eventlog.*/retrain.*/publish.* fault site × fault kind × seed, see
// online/learn_scenario.h) and asserts the LearnGuard contract:
//
//   1. every injected fault ends in a clean rejection, a quarantined
//      feedback batch, or an auto-rollback — never a crash, a served
//      regression, or a silently published bad candidate;
//   2. a failed cycle never touches the served snapshot, and once the fault
//      clears a fresh feedback wave still retrains and publishes (the loop
//      is never wedged);
//   3. zero served-digest divergence on the surviving path: responses stay
//      bitwise identical to the offline predictions of the registry's
//      active snapshot reloaded from its registered path;
//   4. the quarantines are visible in the RunTrace timeline (the run fails
//      if no retrain.quarantine fault instant was recorded).
//
// Writes a JSON accounting report (BENCH_learn_chaos.json) plus the full
// trace (BENCH_learn_chaos.trace.*). Registered as a ctest with LABELS
// "chaos;online"; also a standalone binary:
//   ./build/bench/learn_chaos --seeds=2 --steps=6 --trace=48

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "online/learn_scenario.h"
#include "util/atomic_file.h"
#include "util/fault.h"
#include "util/flags.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace activedp {
namespace {

struct ScenarioRow {
  std::string site;
  std::string kind;
  uint64_t seed;
  int incidents = 0;
  LearnChaosOutcome outcome;
};

/// Verifies every dump one scenario produced and tallies reasons. Learning
/// scenarios may legitimately dump both "retrain.quarantine" and
/// "rollout.rollback" (a failed cycle can do both), so the per-scenario
/// contract is "every dump is well-formed", with the >= 1 quarantine
/// assertion made run-wide. Returns gate failures.
int CheckScenarioIncidents(const std::string& incident_dir, int* dump_count,
                           int* quarantine_dumps) {
  int failures = 0;
  const std::vector<std::string> dumps = ListIncidentDumps(incident_dir);
  *dump_count = static_cast<int>(dumps.size());
  for (const std::string& dump : dumps) {
    const Status verified = VerifyIncidentDump(dump);
    if (!verified.ok()) {
      ++failures;
      std::fprintf(stderr, "FAIL: incident dump %s did not verify: %s\n",
                   dump.c_str(), verified.ToString().c_str());
      continue;
    }
    const Result<IncidentManifest> manifest = ReadIncidentManifest(dump);
    if (!manifest.ok()) {
      ++failures;
      std::fprintf(stderr, "FAIL: incident manifest unreadable in %s\n",
                   dump.c_str());
      continue;
    }
    if (manifest->reason == "retrain.quarantine") {
      // The quarantine instant must be inside the dumped timeline.
      const Result<std::string> timeline =
          ReadFileVerifyingChecksum(dump + "/timeline.jsonl");
      if (!timeline.ok() ||
          timeline->find("retrain.quarantine") == std::string::npos) {
        ++failures;
        std::fprintf(stderr,
                     "FAIL: quarantine timeline in %s lacks the triggering "
                     "instant\n",
                     dump.c_str());
      } else {
        ++*quarantine_dumps;
      }
    }
  }
  return failures;
}

void WriteReport(const std::string& path, const std::vector<ScenarioRow>& rows,
                 int failures, int quarantine_instants, int incident_dumps,
                 int quarantine_dumps, double total_seconds) {
  std::string out;
  out += "{\n";
  out += "  \"benchmark\": \"learn_chaos\",\n";
  out += "  \"scenarios\": " + std::to_string(rows.size()) + ",\n";
  out += "  \"failures\": " + std::to_string(failures) + ",\n";
  out += "  \"quarantine_instants\": " + std::to_string(quarantine_instants) +
         ",\n";
  out += "  \"incident_dumps\": " + std::to_string(incident_dumps) + ",\n";
  out += "  \"quarantine_dumps\": " + std::to_string(quarantine_dumps) +
         ",\n";
  out += "  \"retrain_cycles\": " +
         std::to_string(
             MetricsRegistry::Global().counter_value("retrain.cycles")) +
         ",\n";
  out += "  \"retrain_published\": " +
         std::to_string(
             MetricsRegistry::Global().counter_value("retrain.published")) +
         ",\n";
  out += "  \"quarantined_segments\": " +
         std::to_string(MetricsRegistry::Global().counter_value(
             "retrain.quarantined_segments")) +
         ",\n";
  out += "  \"feedback_events\": " +
         std::to_string(
             MetricsRegistry::Global().counter_value("serve.feedback")) +
         ",\n";
  out += "  \"total_seconds\": " + std::to_string(total_seconds) + ",\n";
  out += "  \"matrix\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScenarioRow& row = rows[i];
    out += "    {\"site\": \"" + row.site + "\", \"kind\": \"" + row.kind +
           "\", \"seed\": " + std::to_string(row.seed) +
           ", \"passed\": " + (row.outcome.passed ? "true" : "false") +
           ", \"fires\": " + std::to_string(row.outcome.fires) +
           ", \"evidence\": " + std::to_string(row.outcome.evidence) +
           ", \"incidents\": " + std::to_string(row.incidents) +
           ", \"recovered_publish\": " +
           (row.outcome.recovered_publish ? "true" : "false") +
           ", \"digest_mismatches\": " +
           std::to_string(row.outcome.digest_mismatches) + "}";
    out += i + 1 < rows.size() ? ",\n" : "\n";
  }
  out += "  ]\n";
  out += "}\n";
  const Status written = AtomicWriteFile(path, out);
  if (!written.ok()) {
    std::fprintf(stderr, "report write failed: %s\n",
                 written.ToString().c_str());
  }
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddFlag("dataset", "youtube", "zoo dataset behind the base snapshot");
  flags.AddFlag("scale", "0.1", "fraction of paper dataset sizes");
  flags.AddFlag("seeds", "2", "number of seeds swept through the matrix");
  flags.AddFlag("steps", "6", "protocol steps behind the deliberately weak "
                              "base snapshot");
  flags.AddFlag("trace", "48", "request trace length per scenario");
  flags.AddFlag("out", "BENCH_learn_chaos.json", "JSON report path");
  flags.AddFlag("trace-dir", "bench-archive",
                "directory the BENCH_learn_chaos.trace.* exports land in");
  flags.AddFlag("incident-dir", "",
                "incident dump root (default <trace-dir>/incidents-learn-"
                "chaos); wiped at startup so counts are per-run");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 2;
  }
  if (flags.help_requested()) return 0;

  const std::string tmpdir =
      (std::filesystem::temp_directory_path() / "activedp-learn-chaos")
          .string();
  std::filesystem::create_directories(tmpdir);

  std::string incident_root = flags.GetString("incident-dir");
  if (incident_root.empty()) {
    incident_root = flags.GetString("trace-dir") + "/incidents-learn-chaos";
  }
  std::filesystem::remove_all(incident_root);

  MetricsRegistry::Global().ResetAll();
  Tracer::Global().Enable();

  std::vector<ScenarioRow> rows;
  int failures = 0;
  int incident_dumps = 0;
  int quarantine_dumps = 0;
  Timer total;
  const int num_seeds = flags.GetInt("seeds");
  for (int s = 0; s < num_seeds; ++s) {
    const uint64_t seed = 7 + 1000003ULL * s;
    const Result<LearnChaosFixture> fixture = BuildLearnChaosFixture(
        tmpdir, flags.GetString("dataset"), flags.GetDouble("scale"), seed,
        flags.GetInt("steps"), flags.GetInt("trace"));
    if (!fixture.ok()) {
      std::fprintf(stderr, "fixture build failed (seed %llu): %s\n",
                   static_cast<unsigned long long>(seed),
                   fixture.status().ToString().c_str());
      return 1;
    }
    for (const LearnChaosSiteInfo& info : LearnChaosSites()) {
      for (const FaultKind kind : LearnChaosKinds()) {
        ScenarioRow row;
        row.site = info.site;
        row.kind = std::string(FaultKindToString(kind));
        row.seed = seed;
        const std::string cell_dir = incident_root + "/" + row.site + "-" +
                                     row.kind + "-seed" + std::to_string(s);
        FlightRecorderOptions recorder_options;
        recorder_options.incident_dir = cell_dir;
        FlightRecorder::Global().Enable(recorder_options);
        row.outcome = RunLearnChaosScenario(*fixture, info.site, kind, seed);
        FlightRecorder::Global().Disable();
        failures += CheckScenarioIncidents(cell_dir, &row.incidents,
                                           &quarantine_dumps);
        incident_dumps += row.incidents;
        std::printf("%-6s %-18s %-14s fires=%-4d evidence=%-3d incidents=%d "
                    "recovered=%d digest_mismatches=%-3d %6.2fs\n",
                    row.outcome.passed ? "ok" : "FAIL", row.site.c_str(),
                    row.kind.c_str(), row.outcome.fires, row.outcome.evidence,
                    row.incidents, row.outcome.recovered_publish ? 1 : 0,
                    row.outcome.digest_mismatches,
                    row.outcome.elapsed_seconds);
        if (!row.outcome.passed) {
          ++failures;
          std::fprintf(stderr, "  seed %llu: %s\n",
                       static_cast<unsigned long long>(seed),
                       row.outcome.failure.c_str());
        }
        rows.push_back(std::move(row));
      }
    }
  }

  const RunTrace trace = Tracer::Global().Collect();
  Tracer::Global().Disable();

  // The acceptance check the harness exists for: quarantines must be
  // *visible in the timeline*, not just implied by return values.
  int quarantine_instants = 0;
  for (const TraceEventRecord& event : trace.events) {
    if (event.category == "fault" && event.name == "retrain.quarantine") {
      ++quarantine_instants;
    }
  }
  if (quarantine_instants == 0) {
    ++failures;
    std::fprintf(
        stderr,
        "FAIL: no retrain.quarantine instant in the RunTrace timeline\n");
  }
  // Incident half of the same contract: at least one quarantine produced a
  // verified flight-recorder dump whose timeline shows the trigger.
  if (quarantine_dumps == 0) {
    ++failures;
    std::fprintf(stderr,
                 "FAIL: no verified retrain.quarantine incident dump\n");
  }

  std::printf("\n%s", trace.Summary().ToString().c_str());
  const Status trace_written = WriteRunTrace(
      trace, flags.GetString("trace-dir"), "BENCH_learn_chaos");
  if (!trace_written.ok()) {
    std::fprintf(stderr, "trace export failed: %s\n",
                 trace_written.ToString().c_str());
  }
  WriteReport(flags.GetString("out"), rows, failures, quarantine_instants,
              incident_dumps, quarantine_dumps, total.ElapsedSeconds());

  std::printf("\n%zu scenarios, %d failures, %d quarantine instants, "
              "%d incident dumps (%d quarantine), %.1fs\n",
              rows.size(), failures, quarantine_instants, incident_dumps,
              quarantine_dumps, total.ElapsedSeconds());
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace activedp

int main(int argc, char** argv) { return activedp::Main(argc, argv); }
